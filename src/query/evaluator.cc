#include "query/evaluator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "constraint/solver_cache.h"
#include "exec/governor.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "util/fault.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "query/analyzer.h"
#include "query/formula_builder.h"
#include "query/parser.h"
#include "query/path_walker.h"

namespace lyric {

size_t DefaultEvalThreads() {
  static const size_t threads = [] {
    const char* env = std::getenv("LYRIC_THREADS");
    if (env == nullptr || *env == '\0') return size_t{1};
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || v == 0) return size_t{1};
    return static_cast<size_t>(v > 64 ? 64 : v);
  }();
  return threads;
}

namespace {

constexpr int kMaxWhereDepth = 64;

// Groups walk results by (extended) binding, collecting the tail sets —
// the "value of a path expression" XSQL compares (§2.2).
std::map<Binding, std::set<Oid>> GroupWalks(std::vector<PathResult> results) {
  std::map<Binding, std::set<Oid>> out;
  for (PathResult& r : results) {
    out[r.binding].insert(r.tail);
  }
  return out;
}

Result<bool> CompareSets(const std::set<Oid>& lhs, const std::string& op,
                         const std::set<Oid>& rhs) {
  if (op == "=") return lhs == rhs;
  if (op == "!=") return lhs != rhs;
  if (op == "contains") {
    return std::includes(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
  }
  // Ordered comparison: both sides must be singletons of comparable kind.
  if (lhs.size() != 1 || rhs.size() != 1) {
    return Status::TypeError("ordered comparison '" + op +
                             "' needs single-valued operands");
  }
  const Oid& a = *lhs.begin();
  const Oid& b = *rhs.begin();
  int cmp;
  if (a.IsNumeric() && b.IsNumeric()) {
    cmp = a.AsNumeric().Compare(b.AsNumeric());
  } else if (a.kind() == b.kind() &&
             (a.kind() == OidKind::kString || a.kind() == OidKind::kSymbol)) {
    cmp = a.AsString().compare(b.AsString());
  } else {
    return Status::TypeError("cannot order-compare " + a.ToString() +
                             " with " + b.ToString());
  }
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  if (op == ">=") return cmp >= 0;
  return Status::Internal("bad comparison operator '" + op + "'");
}

// Maximization over a disjunctive existential body (the SELECT-clause
// MAX/MIN operator of §4.2 works on existential conjunctive formulas; we
// accept the disjunctive generalization, taking the best disjunct).
Result<LpSolution> MaximizeDe(const DisjunctiveExistential& de,
                              const LinearExpr& objective, bool maximize) {
  LpSolution best;
  best.status = LpStatus::kInfeasible;
  LinearExpr dir = maximize ? objective : -objective;
  for (const ExistentialConjunction& ec : de.disjuncts()) {
    ExistentialConjunction fresh = ec.FreshenBound();
    LYRIC_ASSIGN_OR_RETURN(LpSolution sol,
                           Simplex::Maximize(dir, fresh.body()));
    if (sol.status == LpStatus::kInfeasible) continue;
    if (sol.status == LpStatus::kUnbounded) {
      best = sol;
      break;
    }
    if (best.status != LpStatus::kOptimal || sol.value > best.value ||
        (sol.value == best.value && sol.attained && !best.attained)) {
      best = sol;
    }
  }
  if (best.status == LpStatus::kOptimal && !maximize) {
    best.value = -best.value;
  }
  return best;
}

// Converts a governor trip into the partial-result contract: the typed
// Status and the usage report ride on the (OK) ResultSet.
ResultSet GovernedPartial(ResultSet out, exec::CancellationToken& token) {
  LYRIC_OBS_COUNT("evaluator.governor_trips");
  out.set_governor(token.ToStatus(), token.Report());
  return out;
}

// Admission re-entrancy guard: a query evaluated from inside another query
// on the same thread (method dispatch, view materialization) must not
// re-enter the scheduler — with a cap of 1 that would deadlock against the
// slot its own outer query holds.
thread_local int t_admission_depth = 0;

struct AdmissionDepthScope {
  AdmissionDepthScope() { ++t_admission_depth; }
  ~AdmissionDepthScope() { --t_admission_depth; }
};

// Carries admission facts from ExecuteImpl (inside the retry loop) up to
// ExecuteLogged's per-query log record. Thread-local because nested and
// concurrent queries each need their own copy; only the outermost
// evaluation on a thread writes it.
struct EvalLogInfo {
  const char* admission = "off";
  uint64_t queue_wait_ns = 0;
  uint32_t threads = 1;
};
thread_local EvalLogInfo t_eval_log;

// The parsed-AST Execute overload has no raw text, so the log record
// carries a reconstructed shape instead: enough to identify the query in
// the log without re-implementing a full printer.
std::string SummarizeAstQuery(const ast::Query& query) {
  std::string out;
  if (query.is_view) {
    out = "create view " + query.view_name + " ";
  }
  out += "select <" + std::to_string(query.select.size()) + " items> from";
  for (const ast::FromItem& item : query.from) {
    out += " " + item.class_name + " " + item.var + ",";
  }
  if (!query.from.empty()) out.pop_back();
  if (query.where) out += " where <...>";
  return out;
}

}  // namespace

Result<ResultSet> Evaluator::Execute(const std::string& query_text) {
  return ExecuteLogged(&query_text, nullptr);
}

Result<ResultSet> Evaluator::Execute(const ast::Query& query) {
  return ExecuteLogged(nullptr, &query);
}

Result<ResultSet> Evaluator::ExecuteLogged(const std::string* text,
                                           const ast::Query* parsed) {
  // Nested executions (method dispatch / view materialization reached from
  // inside an outer query on this thread) keep the old fast path: no log
  // record of their own — the outer query's record covers them — and no
  // second trace session.
  const bool outermost = t_admission_depth == 0;
  const uint64_t slow_ms = options_.slow_ms.has_value()
                               ? *options_.slow_ms
                               : obs::SlowQueryThresholdMs();
  // A trace is collected when the caller asked for one, or silently when
  // the slow-query threshold is armed so a slow record can carry its
  // per-stage profile. The profile only attaches to the ResultSet under
  // collect_trace — the silent trace exists solely for the log.
  const bool tracing = options_.collect_trace || (outermost && slow_ms > 0);

  static obs::Gauge& active_gauge =
      obs::Registry::Global().GetGauge("evaluator.active_queries");
  if (outermost) {
    t_eval_log = EvalLogInfo{};
    active_gauge.Add(1);
  }
  const SolverCache::Traffic cache_before = SolverCache::Global().traffic();
  const auto start = std::chrono::steady_clock::now();
  uint32_t retries = 0;

  std::shared_ptr<obs::QueryProfile> profile;
  Result<ResultSet> r = [&]() -> Result<ResultSet> {
    if (!tracing) {
      if (text == nullptr) return ExecuteWithRetry(*parsed, &retries);
      LYRIC_ASSIGN_OR_RETURN(ast::Query query, ParseQuery(*text));
      return ExecuteWithRetry(query, &retries);
    }
    profile = std::make_shared<obs::QueryProfile>();
    profile->counters_before = obs::Registry::Global().Snapshot();
    obs::ScopedTraceSession session(&profile->trace);
    std::optional<ast::Query> owned;
    if (text != nullptr) {
      obs::Span span("parse");
      Result<ast::Query> query = ParseQuery(*text);
      if (!query.ok()) return query.status();
      owned.emplace(std::move(*query));
    }
    Result<ResultSet> res =
        ExecuteWithRetry(owned.has_value() ? *owned : *parsed, &retries);
    session.Stop();
    profile->counters_after = obs::Registry::Global().Snapshot();
    if (res.ok() && options_.collect_trace) res->set_profile(profile);
    return res;
  }();

  if (!outermost) return r;

  const uint64_t duration_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  LYRIC_OBS_RECORD("query.latency", duration_ns);
  active_gauge.Add(-1);

  if (r.ok()) {
    // Surface the admission facts on the result so callers that cannot
    // reach the query log (the network server serializing a response)
    // still see how the scheduler treated this query.
    AdmissionInfo admission;
    admission.mode = t_eval_log.admission;
    admission.queue_wait_ns = t_eval_log.queue_wait_ns;
    admission.threads = t_eval_log.threads;
    admission.retries = retries;
    r->set_admission(std::move(admission));
  }

  const SolverCache::Traffic cache_after = SolverCache::Global().traffic();
  obs::QueryLogRecord rec;
  rec.query = text != nullptr ? *text : SummarizeAstQuery(*parsed);
  rec.query_hash = obs::HashQueryText(rec.query);
  rec.duration_ns = duration_ns;
  rec.queue_wait_ns = t_eval_log.queue_wait_ns;
  rec.admission = t_eval_log.admission;
  rec.threads = t_eval_log.threads;
  rec.retries = retries;
  rec.cache_hits = cache_after.hits - cache_before.hits;
  rec.cache_misses = cache_after.misses - cache_before.misses;
  rec.tombstone_hits =
      cache_after.tombstone_hits - cache_before.tombstone_hits;
  if (r.ok()) {
    rec.status = "ok";
    rec.rows = r->size();
    rec.truncated = r->truncated();
    const Status& governor = r->governor_status();
    if (!governor.ok()) {
      // The closed vocabulary the log documents; any future trip kind
      // falls through to its status-code name rather than "".
      rec.governor = governor.code() == StatusCode::kDeadlineExceeded
                         ? "deadline"
                     : governor.code() == StatusCode::kResourceExhausted
                         ? "memory"
                         : StatusCodeToString(governor.code());
    }
  } else {
    rec.status = StatusCodeToString(r.status().code());
  }
  rec.slow = slow_ms > 0 && duration_ns >= slow_ms * 1000000ull;
  if (rec.slow) {
    LYRIC_OBS_COUNT("evaluator.slow_queries");
    if (profile != nullptr) rec.stages = profile->trace.ToPrettyString();
  }
  obs::QueryLog::Global().Append(std::move(rec));
  return r;
}

Result<ResultSet> Evaluator::ExecuteWithRetry(const ast::Query& query,
                                              uint32_t* retries) {
  const exec::RetryPolicy& policy = options_.retry.has_value()
                                        ? *options_.retry
                                        : exec::RetryPolicy::FromEnv();
  uint32_t attempt = 0;
  for (;;) {
    Result<ResultSet> r = ExecuteImpl(query);
    if (r.ok() || !policy.ShouldRetry(r.status(), attempt)) return r;
    // Transient failures only (kUnavailable: admission sheds, injected
    // transport faults) — a kDeadlineExceeded partial is a *result* and
    // never reaches here as an error.
    LYRIC_OBS_COUNT("scheduler.retries");
    ++*retries;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(policy.BackoffMs(attempt, r.status())));
    ++attempt;
  }
}

Result<std::vector<Binding>> Evaluator::EnumerateFrom(
    const ast::Query& query) const {
  std::vector<Binding> bindings{Binding{}};
  for (const ast::FromItem& item : query.from) {
    if (!db_->schema().HasClass(item.class_name)) {
      return Status::NotFound("FROM: unknown class '" + item.class_name +
                              "'");
    }
    std::vector<Oid> extent = db_->Extent(item.class_name);
    std::vector<Binding> next;
    next.reserve(bindings.size() * extent.size());
    for (const Binding& b : bindings) {
      for (const Oid& oid : extent) {
        // Repeated FROM variables must agree (consistency, §2.2).
        auto it = b.vars.find(item.var);
        if (it != b.vars.end()) {
          if (it->second == oid) next.push_back(b);
          continue;
        }
        Binding nb = b;
        nb.vars[item.var] = oid;
        LYRIC_ASSIGN_OR_RETURN(IfaceMap iface, DefaultIfaceMap(oid, *db_));
        nb.iface_maps[item.var] = std::move(iface);
        next.push_back(std::move(nb));
      }
    }
    bindings = std::move(next);
  }
  return bindings;
}

Result<std::vector<Binding>> Evaluator::EvalWhere(
    const ast::WhereExpr& where, const Binding& binding,
    const std::set<std::string>& declared, int depth) const {
  if (depth > kMaxWhereDepth) {
    return Status::InvalidArgument("WHERE clause nesting too deep");
  }
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd: {
      std::vector<Binding> current{binding};
      for (const auto& child : where.children) {
        std::vector<Binding> next;
        for (const Binding& b : current) {
          LYRIC_ASSIGN_OR_RETURN(std::vector<Binding> sub,
                                 EvalWhere(*child, b, declared, depth + 1));
          for (Binding& nb : sub) next.push_back(std::move(nb));
        }
        current = std::move(next);
        if (current.empty()) break;
      }
      return current;
    }
    case Kind::kOr: {
      std::vector<Binding> out;
      for (const auto& child : where.children) {
        LYRIC_ASSIGN_OR_RETURN(std::vector<Binding> sub,
                               EvalWhere(*child, binding, declared,
                                         depth + 1));
        for (Binding& b : sub) {
          if (std::find(out.begin(), out.end(), b) == out.end()) {
            out.push_back(std::move(b));
          }
        }
      }
      return out;
    }
    case Kind::kNot: {
      LYRIC_ASSIGN_OR_RETURN(
          std::vector<Binding> sub,
          EvalWhere(*where.children[0], binding, declared, depth + 1));
      std::vector<Binding> out;
      if (sub.empty()) out.push_back(binding);
      return out;
    }
    case Kind::kPathPred: {
      LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                             WalkPath(where.path, binding, *db_, declared));
      std::vector<Binding> out;
      for (PathResult& r : walks) {
        if (std::find(out.begin(), out.end(), r.binding) == out.end()) {
          out.push_back(std::move(r.binding));
        }
      }
      return out;
    }
    case Kind::kCompare: {
      // Walk the lhs (may extend the binding), then the rhs under each
      // lhs extension, and compare tail sets.
      std::map<Binding, std::set<Oid>> lhs_groups;
      if (where.cmp_lhs.kind == ast::WhereExpr::Operand::Kind::kLiteral) {
        lhs_groups[binding] = {where.cmp_lhs.literal};
      } else {
        LYRIC_ASSIGN_OR_RETURN(
            std::vector<PathResult> walks,
            WalkPath(where.cmp_lhs.path, binding, *db_, declared));
        lhs_groups = GroupWalks(std::move(walks));
      }
      std::vector<Binding> out;
      for (const auto& [b1, set1] : lhs_groups) {
        std::map<Binding, std::set<Oid>> rhs_groups;
        if (where.cmp_rhs.kind == ast::WhereExpr::Operand::Kind::kLiteral) {
          rhs_groups[b1] = {where.cmp_rhs.literal};
        } else {
          LYRIC_ASSIGN_OR_RETURN(
              std::vector<PathResult> walks,
              WalkPath(where.cmp_rhs.path, b1, *db_, declared));
          rhs_groups = GroupWalks(std::move(walks));
        }
        for (const auto& [b2, set2] : rhs_groups) {
          LYRIC_ASSIGN_OR_RETURN(bool holds,
                                 CompareSets(set1, where.cmp_op, set2));
          if (holds &&
              std::find(out.begin(), out.end(), b2) == out.end()) {
            out.push_back(b2);
          }
        }
      }
      return out;
    }
    case Kind::kFormulaSat: {
      FormulaBuilder fb(db_, &declared);
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential de,
                             fb.Build(*where.formula, binding));
      LYRIC_ASSIGN_OR_RETURN(bool sat, de.Satisfiable());
      std::vector<Binding> out;
      if (sat) out.push_back(binding);
      return out;
    }
    case Kind::kEntails: {
      // When both sides are bare predicate uses (the Region pattern
      // "U |= X"), the dimensions align positionally — a FROM-bound CST
      // variable carries no schema dimension names.
      auto resolve_bare = [&](const ast::Formula& f) -> Result<CstObject> {
        if (f.kind != ast::Formula::Kind::kPred || f.pred_args.has_value()) {
          return Status::InvalidArgument("not a bare predicate");
        }
        LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                               WalkPath(*f.pred, binding, *db_, declared));
        if (walks.size() != 1 || !walks[0].tail.IsCst()) {
          return Status::InvalidArgument("not a single CST value");
        }
        return db_->GetCst(walks[0].tail);
      };
      Result<CstObject> lhs_obj = resolve_bare(*where.ent_lhs);
      Result<CstObject> rhs_obj = resolve_bare(*where.ent_rhs);
      if (lhs_obj.ok() && rhs_obj.ok() &&
          lhs_obj->Dimension() == rhs_obj->Dimension()) {
        LYRIC_ASSIGN_OR_RETURN(bool holds, lhs_obj->Entails(*rhs_obj));
        std::vector<Binding> out;
        if (holds) out.push_back(binding);
        return out;
      }
      FormulaBuilder fb(db_, &declared);
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential lhs,
                             fb.Build(*where.ent_lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential rhs,
                             fb.Build(*where.ent_rhs, binding));
      LYRIC_ASSIGN_OR_RETURN(bool holds, lhs.Entails(rhs));
      std::vector<Binding> out;
      if (holds) out.push_back(binding);
      return out;
    }
  }
  return Status::Internal("bad WHERE node");
}

Result<Oid> Evaluator::EvalOptimize(const ast::SelectItem& item,
                                    const Binding& binding,
                                    const std::set<std::string>& declared) {
  FormulaBuilder fb(db_, &declared);
  // For a projection body, optimize over the unprojected formula: the
  // objective may only use the projection variables, and sup over the
  // projection equals sup over the body.
  const ast::Formula* body = item.formula.get();
  if (body->kind == ast::Formula::Kind::kProject) {
    body = body->children[0].get();
  }
  LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential de, fb.Build(*body, binding));
  LYRIC_ASSIGN_OR_RETURN(LinearExpr objective,
                         fb.BuildArith(*item.objective, binding));
  bool maximize = item.opt == ast::SelectItem::OptKind::kMax ||
                  item.opt == ast::SelectItem::OptKind::kMaxPoint;
  LYRIC_ASSIGN_OR_RETURN(LpSolution sol, MaximizeDe(de, objective, maximize));
  if (sol.status == LpStatus::kInfeasible) {
    return Status::NotFound("MAX/MIN SUBJECT TO: constraints infeasible");
  }
  if (sol.status == LpStatus::kUnbounded) {
    return Status::InvalidArgument(
        "MAX/MIN SUBJECT TO: objective is unbounded");
  }
  if (item.opt == ast::SelectItem::OptKind::kMax ||
      item.opt == ast::SelectItem::OptKind::kMin) {
    return Oid::Real(sol.value);
  }
  // MAX_POINT / MIN_POINT: the witness as a point CST object over the
  // objective's variables (plus the projection variables when given).
  VarSet dims = objective.FreeVars();
  if (item.formula->kind == ast::Formula::Kind::kProject) {
    for (const std::string& v : item.formula->proj_vars) {
      dims.insert(Variable::Intern(v));
    }
  }
  Conjunction point;
  std::vector<VarId> interface_vars(dims.begin(), dims.end());
  for (VarId v : interface_vars) {
    auto it = sol.point.find(v);
    Rational value = it == sol.point.end() ? Rational(0) : it->second;
    point.Add(LinearConstraint::Eq(LinearExpr::Var(v),
                                   LinearExpr::Constant(value)));
  }
  LYRIC_ASSIGN_OR_RETURN(CstObject obj,
                         CstObject::FromConjunction(interface_vars, point));
  LYRIC_OBS_COUNT("evaluator.cst_constructed");
  return db_->InternCst(obj);
}

Result<std::vector<std::vector<Oid>>> Evaluator::EvalSelect(
    const ast::Query& query, const Binding& binding,
    const std::set<std::string>& declared) {
  std::vector<std::vector<Oid>> options_per_item;
  for (const ast::SelectItem& item : query.select) {
    std::vector<Oid> options;
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath: {
        LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                               WalkPath(item.path, binding, *db_, declared));
        std::set<Oid> tails;
        for (PathResult& r : walks) tails.insert(std::move(r.tail));
        options.assign(tails.begin(), tails.end());
        break;
      }
      case ast::SelectItem::Kind::kFormulaObject: {
        FormulaBuilder fb(db_, &declared);
        CstObject obj;
        {
          obs::Span span("construct_cst");
          LYRIC_ASSIGN_OR_RETURN(
              obj,
              fb.BuildProjectionObject(*item.formula, binding,
                                       options_.eager_select_projection));
        }
        CstObject canon;
        {
          obs::Span span("canonicalize");
          LYRIC_ASSIGN_OR_RETURN(canon,
                                 obj.Canonicalize(options_.canonical_level));
        }
        LYRIC_ASSIGN_OR_RETURN(Oid oid, db_->InternCst(canon));
        LYRIC_OBS_COUNT("evaluator.cst_constructed");
        options.push_back(std::move(oid));
        break;
      }
      case ast::SelectItem::Kind::kOptimize: {
        Result<Oid> oid = EvalOptimize(item, binding, declared);
        if (!oid.ok()) {
          if (oid.status().IsNotFound()) break;  // Infeasible: no row.
          return oid.status();
        }
        options.push_back(std::move(oid).value());
        break;
      }
    }
    if (options.empty()) return std::vector<std::vector<Oid>>{};
    options_per_item.push_back(std::move(options));
  }
  // Cartesian product across items.
  std::vector<std::vector<Oid>> rows{{}};
  for (const std::vector<Oid>& options : options_per_item) {
    std::vector<std::vector<Oid>> next;
    next.reserve(rows.size() * options.size());
    for (const std::vector<Oid>& row : rows) {
      for (const Oid& oid : options) {
        std::vector<Oid> extended = row;
        extended.push_back(oid);
        next.push_back(std::move(extended));
        if (next.size() > options_.max_rows) {
          return Status::InvalidArgument("result exceeds max_rows");
        }
      }
    }
    rows = std::move(next);
  }
  return rows;
}

Status Evaluator::MaterializeView(const ast::Query& query,
                                  const Binding& binding,
                                  const std::vector<Oid>& row) {
  // Resolve the class name: a view named by a bound query variable (the
  // higher-order Region pattern) makes one class per binding.
  std::string class_name = query.view_name;
  auto vit = binding.vars.find(query.view_name);
  if (vit != binding.vars.end()) {
    class_name = vit->second.ToString();
  }
  if (!db_->schema().HasClass(class_name)) {
    ClassDef def;
    def.name = class_name;
    def.parents = {query.view_parent};
    for (const ast::SignatureItem& sig : query.signature) {
      def.attributes.push_back(
          AttributeDef{sig.attr, sig.set_valued, sig.target_class, {}});
    }
    // Named select items missing from the signature get inferred targets.
    for (size_t i = 0; i < query.select.size() && i < row.size(); ++i) {
      if (!query.select[i].name.has_value()) continue;
      const std::string& attr = *query.select[i].name;
      bool in_sig = false;
      for (const auto& a : def.attributes) {
        if (a.name == attr) in_sig = true;
      }
      if (in_sig) continue;
      std::string target;
      const Oid& v = row[i];
      switch (v.kind()) {
        case OidKind::kInt: target = kIntClass; break;
        case OidKind::kReal: target = kRealClass; break;
        case OidKind::kString: target = kStringClass; break;
        case OidKind::kBool: target = kBoolClass; break;
        case OidKind::kCst: {
          LYRIC_ASSIGN_OR_RETURN(CstObject obj, db_->GetCst(v));
          target = CstClassName(obj.Dimension());
          break;
        }
        default: {
          Result<std::string> cls = db_->ClassOf(v);
          target = cls.ok() ? *cls : std::string(kStringClass);
          break;
        }
      }
      def.attributes.push_back(AttributeDef{attr, false, target, {}});
    }
    LYRIC_RETURN_NOT_OK(db_->schema().AddClass(def));
    created_classes_.push_back(class_name);
  }
  // The instance oid: the OID FUNCTION result, or the single selected oid.
  Oid instance;
  if (!query.oid_function_of.empty()) {
    std::vector<Oid> args;
    for (const std::string& var : query.oid_function_of) {
      auto it = binding.vars.find(var);
      if (it == binding.vars.end()) {
        return Status::InvalidArgument("OID FUNCTION OF: variable '" + var +
                                       "' is unbound");
      }
      args.push_back(it->second);
    }
    instance = Oid::Func(class_name, std::move(args));
  } else if (row.size() == 1) {
    instance = row[0];
  } else {
    instance = Oid::Func(class_name, row);
  }
  if (db_->HasObject(instance)) {
    LYRIC_RETURN_NOT_OK(db_->AddInstanceOf(instance, class_name));
  } else if (instance.kind() == OidKind::kCst) {
    LYRIC_RETURN_NOT_OK(db_->AddInstanceOf(instance, class_name));
  } else {
    LYRIC_RETURN_NOT_OK(db_->Insert(instance, class_name));
    for (size_t i = 0; i < query.select.size() && i < row.size(); ++i) {
      if (!query.select[i].name.has_value()) continue;
      LYRIC_RETURN_NOT_OK(db_->SetAttribute(instance, *query.select[i].name,
                                            Value::Scalar(row[i])));
    }
  }
  return Status::OK();
}

Result<ResultSet> Evaluator::ExecuteImpl(const ast::Query& query) {
  LYRIC_OBS_COUNT("evaluator.queries");
  created_classes_.clear();
  if (options_.cache_capacity.has_value()) {
    SolverCache::Global().set_capacity(*options_.cache_capacity);
  }

  // -- Admission control (docs/ROBUSTNESS.md) -----------------------------
  // Reconfigure the scheduler when any knob is set (0 clears a limit),
  // then ask for a slot. A shed admission returns the typed kUnavailable
  // error here — ExecuteWithRetry may retry it — and a degraded grant
  // forces the scan serial below. Nested executions on this thread skip
  // admission: the outer query's ticket covers them.
  exec::QueryScheduler& scheduler = options_.scheduler != nullptr
                                        ? *options_.scheduler
                                        : exec::QueryScheduler::Global();
  if (options_.max_concurrent_queries.has_value() ||
      options_.queue_capacity.has_value() ||
      options_.queue_timeout_ms.has_value()) {
    exec::SchedulerLimits slimits = scheduler.limits();
    if (options_.max_concurrent_queries.has_value()) {
      slimits.max_concurrent = *options_.max_concurrent_queries == 0
                                   ? std::nullopt
                                   : options_.max_concurrent_queries;
    }
    if (options_.queue_capacity.has_value()) {
      slimits.queue_capacity = *options_.queue_capacity == 0
                                   ? std::nullopt
                                   : options_.queue_capacity;
    }
    if (options_.queue_timeout_ms.has_value()) {
      slimits.queue_timeout_ms = *options_.queue_timeout_ms == 0
                                     ? std::nullopt
                                     : options_.queue_timeout_ms;
    }
    scheduler.Configure(slimits);
  }
  exec::AdmissionTicket ticket;
  const bool outermost = t_admission_depth == 0;
  if (outermost) {
    exec::AdmissionRequest request;
    request.deadline_ms = options_.deadline_ms;
    request.memory_budget = options_.memory_budget.value_or(0);
    Result<exec::AdmissionTicket> admitted = scheduler.Admit(request);
    if (!admitted.ok()) {
      t_eval_log.admission = "shed";
      return admitted.status();
    }
    ticket = std::move(*admitted);
    t_eval_log.admission = ticket.degraded()            ? "degraded"
                           : ticket.queue_wait_ns() > 0 ? "queued"
                                                        : "direct";
    t_eval_log.queue_wait_ns = ticket.queue_wait_ns();
  }
  AdmissionDepthScope admission_depth;
  // Pre-flight: collect the full diagnostic set; any error aborts before
  // data is touched, warnings and §3 family notes ride on the ResultSet.
  std::vector<Diagnostic> preflight;
  if (options_.analyze_first) {
    obs::Span span("analyze");
    Analyzer analyzer(db_);
    AnalysisReport report = analyzer.Check(query);
    for (const Diagnostic& diag : report.diagnostics) {
      if (diag.severity == Severity::kError) {
        return Status(DiagCodeToStatusCode(diag.code), diag.message);
      }
    }
    preflight = std::move(report.diagnostics);
  }
  std::set<std::string> declared = CollectDeclaredVars(query, *db_);

  // Arm the resource governor when any limit is configured — after the
  // pre-flight, so limits govern data-dependent evaluation and cannot
  // trip inside the (bounded) static analysis. The token lives on this
  // frame and outlives every worker (ExecuteParallel joins before
  // returning); the scope makes it ambient for the kernels on this
  // thread, and workers re-install it inside their chunk tasks.
  exec::GovernorLimits limits;
  limits.deadline_ms = options_.deadline_ms;
  limits.memory_budget = options_.memory_budget;
  limits.max_pivots = options_.max_pivots;
  limits.max_disjuncts = options_.max_disjuncts;
  std::optional<exec::CancellationToken> token;
  std::optional<exec::GovernorScope> governor_scope;
  if (limits.Any()) {
    token.emplace(limits);
    governor_scope.emplace(&*token);
  }

  // Column names.
  std::vector<std::string> columns;
  for (const ast::SelectItem& item : query.select) {
    if (item.name.has_value()) {
      columns.push_back(*item.name);
    } else if (item.kind == ast::SelectItem::Kind::kPath) {
      columns.push_back(item.path.ToString());
    } else if (item.kind == ast::SelectItem::Kind::kFormulaObject) {
      columns.push_back("cst");
    } else {
      columns.push_back("opt");
    }
  }
  ResultSet out(std::move(columns));
  out.set_diagnostics(std::move(preflight));

  std::vector<Binding> bindings;
  {
    obs::Span span("from");
    LYRIC_ASSIGN_OR_RETURN(bindings, EnumerateFrom(query));
  }
  LYRIC_OBS_COUNT_N("evaluator.bindings_enumerated", bindings.size());

  // CREATE VIEW materializes objects and schema mid-scan, so it stays on
  // one thread; a single binding has nothing to partition.
  size_t threads = options_.threads < 1 ? 1 : options_.threads;
  // Graceful degradation: a ticket granted under ledger pressure runs the
  // scan serially so the process drains queries before shedding any
  // (byte-identical output either way — docs/PARALLELISM.md).
  if (ticket.degraded()) threads = 1;
  const bool parallel = threads > 1 && !query.is_view && bindings.size() > 1;
  if (outermost) {
    t_eval_log.threads = static_cast<uint32_t>(parallel ? threads : 1);
  }
  if (parallel) {
    return ExecuteParallel(query, declared, std::move(out), bindings,
                           threads);
  }

  for (const Binding& base : bindings) {
    // Governed scans check the token between bindings so queries whose
    // per-binding work never enters a kernel still cancel promptly.
    if (token.has_value()) {
      token->CheckDeadline("evaluator.scan");
      if (token->stopped()) return GovernedPartial(std::move(out), *token);
      token->AccountBinding();
    }
    BindingOutcome outcome = EvalOneBinding(query, base, declared);
    Result<bool> keep_going = CommitOutcome(query, std::move(outcome), &out);
    if (!keep_going.ok()) {
      if (token.has_value() && keep_going.status().IsGovernorTrip()) {
        return GovernedPartial(std::move(out), *token);
      }
      return keep_going.status();
    }
    if (!*keep_going) return out;
  }
  return out;
}

Evaluator::BindingOutcome Evaluator::EvalOneBinding(
    const ast::Query& query, const Binding& base,
    const std::set<std::string>& declared) {
  BindingOutcome outcome;
  std::vector<Binding> survivors{base};
  if (query.where) {
    obs::Span span("where");
    Result<std::vector<Binding>> r =
        EvalWhere(*query.where, base, declared, 0);
    if (!r.ok()) {
      outcome.status = r.status();
      return outcome;
    }
    survivors = std::move(*r);
  }
  // Deduplicate extensions.
  std::sort(survivors.begin(), survivors.end());
  survivors.erase(std::unique(survivors.begin(), survivors.end()),
                  survivors.end());
  LYRIC_OBS_COUNT_N("evaluator.bindings_survived", survivors.size());
  LYRIC_OBS_COUNT_N("evaluator.bindings_filtered",
                    survivors.empty() ? 1 : 0);
  for (Binding& b : survivors) {
    std::vector<std::vector<Oid>> rows;
    {
      obs::Span span("select");
      Result<std::vector<std::vector<Oid>>> r = EvalSelect(query, b, declared);
      if (!r.ok()) {
        outcome.status = r.status();
        return outcome;
      }
      rows = std::move(*r);
    }
    outcome.per_survivor.emplace_back(std::move(b), std::move(rows));
  }
  return outcome;
}

Result<bool> Evaluator::CommitOutcome(const ast::Query& query,
                                      BindingOutcome outcome,
                                      ResultSet* out) {
  LYRIC_RETURN_NOT_OK(outcome.status);
  for (auto& [binding, rows] : outcome.per_survivor) {
    for (std::vector<Oid>& row : rows) {
      // Safety valve: stop at the limit instead of over-producing. The
      // rows already collected are a correct prefix of the answer. The
      // check counts committed merged rows — never per-worker rows — so
      // serial and parallel runs truncate at the identical row.
      if (out->size() >= options_.max_rows) {
        LYRIC_OBS_COUNT("evaluator.rows_truncated");
        out->set_truncated(true);
        return false;
      }
      if (query.is_view) {
        LYRIC_RETURN_NOT_OK(MaterializeView(query, binding, row));
      }
      out->AddRow(std::move(row));
      LYRIC_OBS_COUNT("evaluator.rows_emitted");
    }
  }
  return true;
}

Result<ResultSet> Evaluator::ExecuteParallel(
    const ast::Query& query, const std::set<std::string>& declared,
    ResultSet out, const std::vector<Binding>& bindings, size_t threads) {
  // Chunk so each worker sees several chunks (tail-balancing) without
  // making chunks so small the latch traffic dominates.
  const size_t target_chunks = threads * 4;
  const size_t chunk_size =
      std::max<size_t>(1, (bindings.size() + target_chunks - 1) /
                              target_chunks);
  const size_t num_chunks = (bindings.size() + chunk_size - 1) / chunk_size;
  LYRIC_OBS_COUNT_N("evaluator.parallel_chunks", num_chunks);
  LYRIC_OBS_COUNT("evaluator.parallel_queries");

  std::vector<std::vector<BindingOutcome>> chunk_results(num_chunks);
  exec::ChunkLatch latch(num_chunks);
  // Raised by the merge thread on error or truncation; workers poll it
  // between bindings and skip the remaining work (their chunks merge as
  // empty, which the merge loop never reaches).
  std::atomic<bool> cancel{false};
  // The query thread's governor token (if any); workers re-install it so
  // the kernels they run observe the same limits, and a trip on any
  // worker promptly stops all of them.
  exec::CancellationToken* token = exec::GovernorScope::Current();
  // The query thread's trace collector (null unless a session is active);
  // each worker task opens a lane on it so the parallel scan's spans land
  // in the trace under that worker's thread id.
  obs::TraceCollector* collector = obs::TraceCollector::Current();
  {
    exec::ThreadPool pool(std::min(threads, num_chunks));
    for (size_t ci = 0; ci < num_chunks; ++ci) {
      pool.Submit([this, &query, &declared, &bindings, &chunk_results,
                   &latch, &cancel, token, collector, ci, chunk_size] {
        exec::GovernorScope worker_scope(token);
        obs::WorkerTraceScope trace_scope(collector);
        obs::Span chunk_span("chunk", ci);
        const size_t begin = ci * chunk_size;
        const size_t end = std::min(begin + chunk_size, bindings.size());
        std::vector<BindingOutcome>& results = chunk_results[ci];
        results.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          if (cancel.load(std::memory_order_relaxed)) break;
          if (token != nullptr) {
            token->CheckDeadline("evaluator.worker");
            if (token->stopped()) break;
            token->AccountBinding();
          }
          results.push_back(EvalOneBinding(query, bindings[i], declared));
        }
        latch.Done(ci);
      });
    }

    // Deterministic merge: chunks commit strictly in input order, so the
    // output (rows, diagnostics, truncation point) is byte-identical to
    // the serial scan. Merge-side spans record on the query thread's main
    // lane; worker-side spans land in the per-thread lanes registered
    // above and are merged into the trace export by thread id.
    Result<ResultSet> merged = [&]() -> Result<ResultSet> {
      for (size_t ci = 0; ci < num_chunks; ++ci) {
        {
          obs::Span span("chunk_wait");
          latch.WaitFor(ci);
        }
        // Simulated lost chunk at the merge: drop the workers' outcomes
        // and recompute the chunk inline on the merge thread (the
        // governor token is ambient here), keeping the committed output
        // byte-identical to a clean run — the contract the merge fault
        // gate verifies.
        if (fault::Enabled() && fault::Inject(fault::kSiteMerge)) {
          LYRIC_OBS_COUNT("evaluator.merge_recomputed");
          const size_t begin = ci * chunk_size;
          const size_t end = std::min(begin + chunk_size, bindings.size());
          std::vector<BindingOutcome> redo;
          redo.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            if (token != nullptr && token->stopped()) break;
            redo.push_back(EvalOneBinding(query, bindings[i], declared));
          }
          chunk_results[ci] = std::move(redo);
        }
        obs::Span span("chunk_merge");
        for (BindingOutcome& outcome : chunk_results[ci]) {
          Result<bool> keep_going =
              CommitOutcome(query, std::move(outcome), &out);
          if (!keep_going.ok()) {
            cancel.store(true, std::memory_order_relaxed);
            if (token != nullptr && keep_going.status().IsGovernorTrip()) {
              // The merged prefix committed so far is valid; convert the
              // trip into the partial-result contract. The Status is the
              // token's sticky trip record, so serial and parallel runs
              // of the same query report the identical code and message.
              return GovernedPartial(std::move(out), *token);
            }
            return keep_going.status();
          }
          if (!*keep_going) {
            cancel.store(true, std::memory_order_relaxed);
            return std::move(out);
          }
        }
      }
      if (token != nullptr && token->stopped()) {
        // Workers stopped between bindings without any outcome carrying
        // the trip status (e.g. a deadline expiring during the scan of a
        // kernel-free query): the merge saw only OK outcomes, but the
        // result is still a prefix.
        return GovernedPartial(std::move(out), *token);
      }
      return std::move(out);
    }();
    // Workers may still be running cancelled chunks; they must finish
    // before chunk_results/cancel/latch leave scope (the pool dtor joins).
    latch.WaitAll();
    return merged;
  }
}

}  // namespace lyric
