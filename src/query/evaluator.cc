#include "query/evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/analyzer.h"
#include "query/formula_builder.h"
#include "query/parser.h"
#include "query/path_walker.h"

namespace lyric {

namespace {

constexpr int kMaxWhereDepth = 64;

// Groups walk results by (extended) binding, collecting the tail sets —
// the "value of a path expression" XSQL compares (§2.2).
std::map<Binding, std::set<Oid>> GroupWalks(std::vector<PathResult> results) {
  std::map<Binding, std::set<Oid>> out;
  for (PathResult& r : results) {
    out[r.binding].insert(r.tail);
  }
  return out;
}

Result<bool> CompareSets(const std::set<Oid>& lhs, const std::string& op,
                         const std::set<Oid>& rhs) {
  if (op == "=") return lhs == rhs;
  if (op == "!=") return lhs != rhs;
  if (op == "contains") {
    return std::includes(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
  }
  // Ordered comparison: both sides must be singletons of comparable kind.
  if (lhs.size() != 1 || rhs.size() != 1) {
    return Status::TypeError("ordered comparison '" + op +
                             "' needs single-valued operands");
  }
  const Oid& a = *lhs.begin();
  const Oid& b = *rhs.begin();
  int cmp;
  if (a.IsNumeric() && b.IsNumeric()) {
    cmp = a.AsNumeric().Compare(b.AsNumeric());
  } else if (a.kind() == b.kind() &&
             (a.kind() == OidKind::kString || a.kind() == OidKind::kSymbol)) {
    cmp = a.AsString().compare(b.AsString());
  } else {
    return Status::TypeError("cannot order-compare " + a.ToString() +
                             " with " + b.ToString());
  }
  if (op == "<") return cmp < 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">") return cmp > 0;
  if (op == ">=") return cmp >= 0;
  return Status::Internal("bad comparison operator '" + op + "'");
}

// Maximization over a disjunctive existential body (the SELECT-clause
// MAX/MIN operator of §4.2 works on existential conjunctive formulas; we
// accept the disjunctive generalization, taking the best disjunct).
Result<LpSolution> MaximizeDe(const DisjunctiveExistential& de,
                              const LinearExpr& objective, bool maximize) {
  LpSolution best;
  best.status = LpStatus::kInfeasible;
  LinearExpr dir = maximize ? objective : -objective;
  for (const ExistentialConjunction& ec : de.disjuncts()) {
    ExistentialConjunction fresh = ec.FreshenBound();
    LYRIC_ASSIGN_OR_RETURN(LpSolution sol,
                           Simplex::Maximize(dir, fresh.body()));
    if (sol.status == LpStatus::kInfeasible) continue;
    if (sol.status == LpStatus::kUnbounded) {
      best = sol;
      break;
    }
    if (best.status != LpStatus::kOptimal || sol.value > best.value ||
        (sol.value == best.value && sol.attained && !best.attained)) {
      best = sol;
    }
  }
  if (best.status == LpStatus::kOptimal && !maximize) {
    best.value = -best.value;
  }
  return best;
}

}  // namespace

Result<ResultSet> Evaluator::Execute(const std::string& query_text) {
  if (!options_.collect_trace) {
    LYRIC_ASSIGN_OR_RETURN(ast::Query query, ParseQuery(query_text));
    return ExecuteImpl(query);
  }
  auto profile = std::make_shared<obs::QueryProfile>();
  profile->counters_before = obs::Registry::Global().Snapshot();
  obs::ScopedTraceSession session(&profile->trace);
  Result<ast::Query> query = [&]() -> Result<ast::Query> {
    obs::Span span("parse");
    return ParseQuery(query_text);
  }();
  if (!query.ok()) return query.status();
  Result<ResultSet> r = ExecuteImpl(*query);
  session.Stop();
  profile->counters_after = obs::Registry::Global().Snapshot();
  if (r.ok()) r->set_profile(std::move(profile));
  return r;
}

Result<ResultSet> Evaluator::Execute(const ast::Query& query) {
  if (!options_.collect_trace) return ExecuteImpl(query);
  auto profile = std::make_shared<obs::QueryProfile>();
  profile->counters_before = obs::Registry::Global().Snapshot();
  obs::ScopedTraceSession session(&profile->trace);
  Result<ResultSet> r = ExecuteImpl(query);
  session.Stop();
  profile->counters_after = obs::Registry::Global().Snapshot();
  if (r.ok()) r->set_profile(std::move(profile));
  return r;
}

Result<std::vector<Binding>> Evaluator::EnumerateFrom(
    const ast::Query& query) const {
  std::vector<Binding> bindings{Binding{}};
  for (const ast::FromItem& item : query.from) {
    if (!db_->schema().HasClass(item.class_name)) {
      return Status::NotFound("FROM: unknown class '" + item.class_name +
                              "'");
    }
    std::vector<Oid> extent = db_->Extent(item.class_name);
    std::vector<Binding> next;
    next.reserve(bindings.size() * extent.size());
    for (const Binding& b : bindings) {
      for (const Oid& oid : extent) {
        // Repeated FROM variables must agree (consistency, §2.2).
        auto it = b.vars.find(item.var);
        if (it != b.vars.end()) {
          if (it->second == oid) next.push_back(b);
          continue;
        }
        Binding nb = b;
        nb.vars[item.var] = oid;
        LYRIC_ASSIGN_OR_RETURN(IfaceMap iface, DefaultIfaceMap(oid, *db_));
        nb.iface_maps[item.var] = std::move(iface);
        next.push_back(std::move(nb));
      }
    }
    bindings = std::move(next);
  }
  return bindings;
}

Result<std::vector<Binding>> Evaluator::EvalWhere(
    const ast::WhereExpr& where, const Binding& binding,
    const std::set<std::string>& declared, int depth) const {
  if (depth > kMaxWhereDepth) {
    return Status::InvalidArgument("WHERE clause nesting too deep");
  }
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd: {
      std::vector<Binding> current{binding};
      for (const auto& child : where.children) {
        std::vector<Binding> next;
        for (const Binding& b : current) {
          LYRIC_ASSIGN_OR_RETURN(std::vector<Binding> sub,
                                 EvalWhere(*child, b, declared, depth + 1));
          for (Binding& nb : sub) next.push_back(std::move(nb));
        }
        current = std::move(next);
        if (current.empty()) break;
      }
      return current;
    }
    case Kind::kOr: {
      std::vector<Binding> out;
      for (const auto& child : where.children) {
        LYRIC_ASSIGN_OR_RETURN(std::vector<Binding> sub,
                               EvalWhere(*child, binding, declared,
                                         depth + 1));
        for (Binding& b : sub) {
          if (std::find(out.begin(), out.end(), b) == out.end()) {
            out.push_back(std::move(b));
          }
        }
      }
      return out;
    }
    case Kind::kNot: {
      LYRIC_ASSIGN_OR_RETURN(
          std::vector<Binding> sub,
          EvalWhere(*where.children[0], binding, declared, depth + 1));
      std::vector<Binding> out;
      if (sub.empty()) out.push_back(binding);
      return out;
    }
    case Kind::kPathPred: {
      LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                             WalkPath(where.path, binding, *db_, declared));
      std::vector<Binding> out;
      for (PathResult& r : walks) {
        if (std::find(out.begin(), out.end(), r.binding) == out.end()) {
          out.push_back(std::move(r.binding));
        }
      }
      return out;
    }
    case Kind::kCompare: {
      // Walk the lhs (may extend the binding), then the rhs under each
      // lhs extension, and compare tail sets.
      std::map<Binding, std::set<Oid>> lhs_groups;
      if (where.cmp_lhs.kind == ast::WhereExpr::Operand::Kind::kLiteral) {
        lhs_groups[binding] = {where.cmp_lhs.literal};
      } else {
        LYRIC_ASSIGN_OR_RETURN(
            std::vector<PathResult> walks,
            WalkPath(where.cmp_lhs.path, binding, *db_, declared));
        lhs_groups = GroupWalks(std::move(walks));
      }
      std::vector<Binding> out;
      for (const auto& [b1, set1] : lhs_groups) {
        std::map<Binding, std::set<Oid>> rhs_groups;
        if (where.cmp_rhs.kind == ast::WhereExpr::Operand::Kind::kLiteral) {
          rhs_groups[b1] = {where.cmp_rhs.literal};
        } else {
          LYRIC_ASSIGN_OR_RETURN(
              std::vector<PathResult> walks,
              WalkPath(where.cmp_rhs.path, b1, *db_, declared));
          rhs_groups = GroupWalks(std::move(walks));
        }
        for (const auto& [b2, set2] : rhs_groups) {
          LYRIC_ASSIGN_OR_RETURN(bool holds,
                                 CompareSets(set1, where.cmp_op, set2));
          if (holds &&
              std::find(out.begin(), out.end(), b2) == out.end()) {
            out.push_back(b2);
          }
        }
      }
      return out;
    }
    case Kind::kFormulaSat: {
      FormulaBuilder fb(db_, &declared);
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential de,
                             fb.Build(*where.formula, binding));
      LYRIC_ASSIGN_OR_RETURN(bool sat, de.Satisfiable());
      std::vector<Binding> out;
      if (sat) out.push_back(binding);
      return out;
    }
    case Kind::kEntails: {
      // When both sides are bare predicate uses (the Region pattern
      // "U |= X"), the dimensions align positionally — a FROM-bound CST
      // variable carries no schema dimension names.
      auto resolve_bare = [&](const ast::Formula& f) -> Result<CstObject> {
        if (f.kind != ast::Formula::Kind::kPred || f.pred_args.has_value()) {
          return Status::InvalidArgument("not a bare predicate");
        }
        LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                               WalkPath(*f.pred, binding, *db_, declared));
        if (walks.size() != 1 || !walks[0].tail.IsCst()) {
          return Status::InvalidArgument("not a single CST value");
        }
        return db_->GetCst(walks[0].tail);
      };
      Result<CstObject> lhs_obj = resolve_bare(*where.ent_lhs);
      Result<CstObject> rhs_obj = resolve_bare(*where.ent_rhs);
      if (lhs_obj.ok() && rhs_obj.ok() &&
          lhs_obj->Dimension() == rhs_obj->Dimension()) {
        LYRIC_ASSIGN_OR_RETURN(bool holds, lhs_obj->Entails(*rhs_obj));
        std::vector<Binding> out;
        if (holds) out.push_back(binding);
        return out;
      }
      FormulaBuilder fb(db_, &declared);
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential lhs,
                             fb.Build(*where.ent_lhs, binding));
      LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential rhs,
                             fb.Build(*where.ent_rhs, binding));
      LYRIC_ASSIGN_OR_RETURN(bool holds, lhs.Entails(rhs));
      std::vector<Binding> out;
      if (holds) out.push_back(binding);
      return out;
    }
  }
  return Status::Internal("bad WHERE node");
}

Result<Oid> Evaluator::EvalOptimize(const ast::SelectItem& item,
                                    const Binding& binding,
                                    const std::set<std::string>& declared) {
  FormulaBuilder fb(db_, &declared);
  // For a projection body, optimize over the unprojected formula: the
  // objective may only use the projection variables, and sup over the
  // projection equals sup over the body.
  const ast::Formula* body = item.formula.get();
  if (body->kind == ast::Formula::Kind::kProject) {
    body = body->children[0].get();
  }
  LYRIC_ASSIGN_OR_RETURN(DisjunctiveExistential de, fb.Build(*body, binding));
  LYRIC_ASSIGN_OR_RETURN(LinearExpr objective,
                         fb.BuildArith(*item.objective, binding));
  bool maximize = item.opt == ast::SelectItem::OptKind::kMax ||
                  item.opt == ast::SelectItem::OptKind::kMaxPoint;
  LYRIC_ASSIGN_OR_RETURN(LpSolution sol, MaximizeDe(de, objective, maximize));
  if (sol.status == LpStatus::kInfeasible) {
    return Status::NotFound("MAX/MIN SUBJECT TO: constraints infeasible");
  }
  if (sol.status == LpStatus::kUnbounded) {
    return Status::InvalidArgument(
        "MAX/MIN SUBJECT TO: objective is unbounded");
  }
  if (item.opt == ast::SelectItem::OptKind::kMax ||
      item.opt == ast::SelectItem::OptKind::kMin) {
    return Oid::Real(sol.value);
  }
  // MAX_POINT / MIN_POINT: the witness as a point CST object over the
  // objective's variables (plus the projection variables when given).
  VarSet dims = objective.FreeVars();
  if (item.formula->kind == ast::Formula::Kind::kProject) {
    for (const std::string& v : item.formula->proj_vars) {
      dims.insert(Variable::Intern(v));
    }
  }
  Conjunction point;
  std::vector<VarId> interface_vars(dims.begin(), dims.end());
  for (VarId v : interface_vars) {
    auto it = sol.point.find(v);
    Rational value = it == sol.point.end() ? Rational(0) : it->second;
    point.Add(LinearConstraint::Eq(LinearExpr::Var(v),
                                   LinearExpr::Constant(value)));
  }
  LYRIC_ASSIGN_OR_RETURN(CstObject obj,
                         CstObject::FromConjunction(interface_vars, point));
  LYRIC_OBS_COUNT("evaluator.cst_constructed");
  return db_->InternCst(obj);
}

Result<std::vector<std::vector<Oid>>> Evaluator::EvalSelect(
    const ast::Query& query, const Binding& binding,
    const std::set<std::string>& declared) {
  std::vector<std::vector<Oid>> options_per_item;
  for (const ast::SelectItem& item : query.select) {
    std::vector<Oid> options;
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath: {
        LYRIC_ASSIGN_OR_RETURN(std::vector<PathResult> walks,
                               WalkPath(item.path, binding, *db_, declared));
        std::set<Oid> tails;
        for (PathResult& r : walks) tails.insert(std::move(r.tail));
        options.assign(tails.begin(), tails.end());
        break;
      }
      case ast::SelectItem::Kind::kFormulaObject: {
        FormulaBuilder fb(db_, &declared);
        CstObject obj;
        {
          obs::Span span("construct_cst");
          LYRIC_ASSIGN_OR_RETURN(
              obj,
              fb.BuildProjectionObject(*item.formula, binding,
                                       options_.eager_select_projection));
        }
        CstObject canon;
        {
          obs::Span span("canonicalize");
          LYRIC_ASSIGN_OR_RETURN(canon,
                                 obj.Canonicalize(options_.canonical_level));
        }
        LYRIC_ASSIGN_OR_RETURN(Oid oid, db_->InternCst(canon));
        LYRIC_OBS_COUNT("evaluator.cst_constructed");
        options.push_back(std::move(oid));
        break;
      }
      case ast::SelectItem::Kind::kOptimize: {
        Result<Oid> oid = EvalOptimize(item, binding, declared);
        if (!oid.ok()) {
          if (oid.status().IsNotFound()) break;  // Infeasible: no row.
          return oid.status();
        }
        options.push_back(std::move(oid).value());
        break;
      }
    }
    if (options.empty()) return std::vector<std::vector<Oid>>{};
    options_per_item.push_back(std::move(options));
  }
  // Cartesian product across items.
  std::vector<std::vector<Oid>> rows{{}};
  for (const std::vector<Oid>& options : options_per_item) {
    std::vector<std::vector<Oid>> next;
    next.reserve(rows.size() * options.size());
    for (const std::vector<Oid>& row : rows) {
      for (const Oid& oid : options) {
        std::vector<Oid> extended = row;
        extended.push_back(oid);
        next.push_back(std::move(extended));
        if (next.size() > options_.max_rows) {
          return Status::InvalidArgument("result exceeds max_rows");
        }
      }
    }
    rows = std::move(next);
  }
  return rows;
}

Status Evaluator::MaterializeView(const ast::Query& query,
                                  const Binding& binding,
                                  const std::vector<Oid>& row) {
  // Resolve the class name: a view named by a bound query variable (the
  // higher-order Region pattern) makes one class per binding.
  std::string class_name = query.view_name;
  auto vit = binding.vars.find(query.view_name);
  if (vit != binding.vars.end()) {
    class_name = vit->second.ToString();
  }
  if (!db_->schema().HasClass(class_name)) {
    ClassDef def;
    def.name = class_name;
    def.parents = {query.view_parent};
    for (const ast::SignatureItem& sig : query.signature) {
      def.attributes.push_back(
          AttributeDef{sig.attr, sig.set_valued, sig.target_class, {}});
    }
    // Named select items missing from the signature get inferred targets.
    for (size_t i = 0; i < query.select.size() && i < row.size(); ++i) {
      if (!query.select[i].name.has_value()) continue;
      const std::string& attr = *query.select[i].name;
      bool in_sig = false;
      for (const auto& a : def.attributes) {
        if (a.name == attr) in_sig = true;
      }
      if (in_sig) continue;
      std::string target;
      const Oid& v = row[i];
      switch (v.kind()) {
        case OidKind::kInt: target = kIntClass; break;
        case OidKind::kReal: target = kRealClass; break;
        case OidKind::kString: target = kStringClass; break;
        case OidKind::kBool: target = kBoolClass; break;
        case OidKind::kCst: {
          LYRIC_ASSIGN_OR_RETURN(CstObject obj, db_->GetCst(v));
          target = CstClassName(obj.Dimension());
          break;
        }
        default: {
          Result<std::string> cls = db_->ClassOf(v);
          target = cls.ok() ? *cls : std::string(kStringClass);
          break;
        }
      }
      def.attributes.push_back(AttributeDef{attr, false, target, {}});
    }
    LYRIC_RETURN_NOT_OK(db_->schema().AddClass(def));
    created_classes_.push_back(class_name);
  }
  // The instance oid: the OID FUNCTION result, or the single selected oid.
  Oid instance;
  if (!query.oid_function_of.empty()) {
    std::vector<Oid> args;
    for (const std::string& var : query.oid_function_of) {
      auto it = binding.vars.find(var);
      if (it == binding.vars.end()) {
        return Status::InvalidArgument("OID FUNCTION OF: variable '" + var +
                                       "' is unbound");
      }
      args.push_back(it->second);
    }
    instance = Oid::Func(class_name, std::move(args));
  } else if (row.size() == 1) {
    instance = row[0];
  } else {
    instance = Oid::Func(class_name, row);
  }
  if (db_->HasObject(instance)) {
    LYRIC_RETURN_NOT_OK(db_->AddInstanceOf(instance, class_name));
  } else if (instance.kind() == OidKind::kCst) {
    LYRIC_RETURN_NOT_OK(db_->AddInstanceOf(instance, class_name));
  } else {
    LYRIC_RETURN_NOT_OK(db_->Insert(instance, class_name));
    for (size_t i = 0; i < query.select.size() && i < row.size(); ++i) {
      if (!query.select[i].name.has_value()) continue;
      LYRIC_RETURN_NOT_OK(db_->SetAttribute(instance, *query.select[i].name,
                                            Value::Scalar(row[i])));
    }
  }
  return Status::OK();
}

Result<ResultSet> Evaluator::ExecuteImpl(const ast::Query& query) {
  LYRIC_OBS_COUNT("evaluator.queries");
  created_classes_.clear();
  // Pre-flight: collect the full diagnostic set; any error aborts before
  // data is touched, warnings and §3 family notes ride on the ResultSet.
  std::vector<Diagnostic> preflight;
  if (options_.analyze_first) {
    obs::Span span("analyze");
    Analyzer analyzer(db_);
    AnalysisReport report = analyzer.Check(query);
    for (const Diagnostic& diag : report.diagnostics) {
      if (diag.severity == Severity::kError) {
        return Status(DiagCodeToStatusCode(diag.code), diag.message);
      }
    }
    preflight = std::move(report.diagnostics);
  }
  std::set<std::string> declared = CollectDeclaredVars(query, *db_);

  // Column names.
  std::vector<std::string> columns;
  for (const ast::SelectItem& item : query.select) {
    if (item.name.has_value()) {
      columns.push_back(*item.name);
    } else if (item.kind == ast::SelectItem::Kind::kPath) {
      columns.push_back(item.path.ToString());
    } else if (item.kind == ast::SelectItem::Kind::kFormulaObject) {
      columns.push_back("cst");
    } else {
      columns.push_back("opt");
    }
  }
  ResultSet out(std::move(columns));
  out.set_diagnostics(std::move(preflight));

  std::vector<Binding> bindings;
  {
    obs::Span span("from");
    LYRIC_ASSIGN_OR_RETURN(bindings, EnumerateFrom(query));
  }
  LYRIC_OBS_COUNT_N("evaluator.bindings_enumerated", bindings.size());
  for (const Binding& base : bindings) {
    std::vector<Binding> survivors{base};
    if (query.where) {
      obs::Span span("where");
      LYRIC_ASSIGN_OR_RETURN(survivors,
                             EvalWhere(*query.where, base, declared, 0));
    }
    // Deduplicate extensions.
    std::sort(survivors.begin(), survivors.end());
    survivors.erase(std::unique(survivors.begin(), survivors.end()),
                    survivors.end());
    LYRIC_OBS_COUNT_N("evaluator.bindings_survived", survivors.size());
    LYRIC_OBS_COUNT_N("evaluator.bindings_filtered",
                      survivors.empty() ? 1 : 0);
    for (const Binding& b : survivors) {
      std::vector<std::vector<Oid>> rows;
      {
        obs::Span span("select");
        LYRIC_ASSIGN_OR_RETURN(rows, EvalSelect(query, b, declared));
      }
      for (std::vector<Oid>& row : rows) {
        // Safety valve: stop at the limit instead of over-producing. The
        // rows already collected are a correct prefix of the answer.
        if (out.size() >= options_.max_rows) {
          LYRIC_OBS_COUNT("evaluator.rows_truncated");
          out.set_truncated(true);
          return out;
        }
        if (query.is_view) {
          LYRIC_RETURN_NOT_OK(MaterializeView(query, b, row));
        }
        out.AddRow(std::move(row));
        LYRIC_OBS_COUNT("evaluator.rows_emitted");
      }
    }
  }
  return out;
}

}  // namespace lyric
