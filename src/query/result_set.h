// Query results: a relation of oids (§2.2), optionally materialized into
// new objects via OID FUNCTION OF.

#ifndef LYRIC_QUERY_RESULT_SET_H_
#define LYRIC_QUERY_RESULT_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/governor.h"
#include "object/oid.h"
#include "obs/profile.h"
#include "query/diagnostics.h"
#include "util/status.h"

namespace lyric {

/// How admission control treated the evaluation that produced a result
/// (docs/ROBUSTNESS.md state machine). Timing fields are wall-clock
/// facts, not part of the deterministic answer — differential tests
/// compare results without them.
struct AdmissionInfo {
  /// "off" (no scheduling), "direct", "queued", or "degraded".
  std::string mode = "off";
  /// Time spent parked in the scheduler's wait queue (0 for direct).
  uint64_t queue_wait_ns = 0;
  /// Worker threads the evaluation actually used (1 after degradation).
  uint32_t threads = 1;
  /// Transient (kUnavailable) failures retried away before this result.
  uint32_t retries = 0;
};

/// A query result: named columns over rows of oids. Rows are deduplicated
/// (the answer of a query is a set).
class ResultSet {
 public:
  explicit ResultSet(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}
  ResultSet() = default;

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Oid>>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row unless an identical one is present.
  void AddRow(std::vector<Oid> row);

  /// True if some row's first column equals `oid` (convenience for
  /// single-column results).
  bool ContainsOid(const Oid& oid) const;

  /// All values of column `idx` in row order.
  std::vector<Oid> Column(size_t idx) const;

  /// Tabular rendering.
  std::string ToString() const;

  /// True when the evaluator stopped early because the result reached
  /// EvalOptions::max_rows; the rows present are a correct prefix.
  bool truncated() const { return truncated_; }
  void set_truncated(bool truncated) { truncated_ = truncated; }

  /// The observability record of the evaluation that produced this result,
  /// present when EvalOptions::collect_trace was set; null otherwise.
  const std::shared_ptr<const obs::QueryProfile>& profile() const {
    return profile_;
  }
  void set_profile(std::shared_ptr<const obs::QueryProfile> profile) {
    profile_ = std::move(profile);
  }

  /// Findings of the pre-flight analysis (EvalOptions::analyze_first):
  /// warnings and §3 family notes the query evaluated despite. Errors
  /// never reach a ResultSet — they abort evaluation.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  void set_diagnostics(std::vector<Diagnostic> diagnostics) {
    diagnostics_ = std::move(diagnostics);
  }

  /// OK unless a governed evaluation tripped a resource limit
  /// (kDeadlineExceeded / kResourceExhausted). When set, the rows present
  /// are partial progress — a prefix of the serial answer — and
  /// governor_report() carries the usage diagnostics.
  const Status& governor_status() const { return governor_status_; }
  const exec::GovernorReport& governor_report() const {
    return governor_report_;
  }
  void set_governor(Status status, exec::GovernorReport report) {
    governor_status_ = std::move(status);
    governor_report_ = std::move(report);
  }

  /// The admission-control record of the evaluation (mode, queue wait,
  /// degraded thread count, retries). Default-constructed ("off") for
  /// nested evaluations — only the outermost Execute is scheduled.
  const AdmissionInfo& admission() const { return admission_; }
  void set_admission(AdmissionInfo admission) {
    admission_ = std::move(admission);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Oid>> rows_;
  bool truncated_ = false;
  std::shared_ptr<const obs::QueryProfile> profile_;
  std::vector<Diagnostic> diagnostics_;
  Status governor_status_ = Status::OK();
  exec::GovernorReport governor_report_;
  AdmissionInfo admission_;
};

}  // namespace lyric

#endif  // LYRIC_QUERY_RESULT_SET_H_
