#include "query/analyzer.h"

#include <algorithm>

#include "query/family_check.h"
#include "query/parser.h"
#include "query/path_walker.h"

namespace lyric {

// Variables known to be bound at the current point, with their inferred
// classes ("" = bound but class unknown).
struct Analyzer::Scope {
  std::map<std::string, std::string> bound;
  std::set<std::string> declared;

  bool IsBound(const std::string& var) const { return bound.count(var) > 0; }
  void Bind(const std::string& var, const std::string& cls) {
    auto [it, inserted] = bound.emplace(var, cls);
    if (!inserted && it->second.empty()) it->second = cls;
  }
};

namespace {

// True for identifiers that denote attribute variables (no such attribute
// anywhere in the schema).
bool IsAttributeVariable(const Database& db, const std::string& name) {
  for (const std::string& cls : db.schema().ClassNames()) {
    if (db.schema().FindAttribute(cls, name).ok()) return false;
  }
  return !db.methods().HasAnywhere(name);
}

std::optional<size_t> CstDimensionOf(const std::string& cls) {
  return ParseCstClassName(cls);
}

// Emits an error diagnostic; the false return is the caller's "stop this
// clause" signal.
bool EmitError(AnalysisReport* report, DiagCode code, SourceSpan span,
               std::string message) {
  report->diagnostics.push_back(MakeDiag(code, span, std::move(message)));
  return false;
}

// Emits a warning diagnostic and mirrors it into the legacy string list.
void EmitWarning(AnalysisReport* report, DiagCode code, SourceSpan span,
                 std::string message) {
  report->warnings.push_back(message);
  report->diagnostics.push_back(MakeDiag(code, span, std::move(message)));
}

}  // namespace

StatusCode DiagCodeToStatusCode(DiagCode code) {
  switch (code) {
    case DiagCode::kLexError:
    case DiagCode::kSyntaxError:
      return StatusCode::kParseError;
    case DiagCode::kUnknownClass:
    case DiagCode::kUnknownViewParent:
    case DiagCode::kUnknownSigTarget:
      return StatusCode::kNotFound;
    case DiagCode::kViewExists:
      return StatusCode::kAlreadyExists;
    default:
      return StatusCode::kTypeError;
  }
}

bool Analyzer::CheckPath(const ast::PathExpr& path, Scope* scope,
                         AnalysisReport* report, bool binding_allowed,
                         std::string* tail_class) const {
  std::string cur_class;
  if (path.head.kind == ast::NameOrLiteral::Kind::kLiteral) {
    cur_class = "";  // Literal heads type as their oid kind; steps rare.
  } else if (scope->declared.count(path.head.name)) {
    if (!scope->IsBound(path.head.name)) {
      return EmitError(
          report, DiagCode::kUseBeforeBind,
          {path.offset, path.head.name.size()},
          "variable '" + path.head.name + "' is used in path " +
              path.ToString() +
              " before it is bound (bind it via FROM or an earlier "
              "conjunct)");
    }
    cur_class = scope->bound.at(path.head.name);
  } else {
    // Symbolic oid.
    Oid sym = Oid::Symbol(path.head.name);
    if (db_->HasObject(sym)) {
      Result<std::string> cls = db_->ClassOf(sym);
      if (cls.ok()) cur_class = *cls;
    } else {
      EmitWarning(report, DiagCode::kUnknownSymbolicOid,
                  {path.offset, path.head.name.size()},
                  "symbolic oid '" + path.head.name +
                      "' does not name a stored object");
    }
  }
  for (const ast::PathExpr::Step& step : path.steps) {
    std::string next_class;
    bool next_known = false;
    const AttributeDef* cst_attr = nullptr;
    if (IsAttributeVariable(*db_, step.attribute)) {
      EmitWarning(
          report, DiagCode::kAttributeVariable,
          {step.offset, step.attribute.size()},
          "'" + step.attribute + "' in path " + path.ToString() +
              " is a higher-order attribute variable (enumerates "
              "attributes)");
    } else if (!cur_class.empty()) {
      auto dim = CstDimensionOf(cur_class);
      Result<const AttributeDef*> attr =
          db_->schema().FindAttribute(cur_class, step.attribute);
      if (!attr.ok() &&
          db_->methods().Has(db_->schema(), cur_class, step.attribute)) {
        // A 0-ary method step; its result class depends on dispatch, so
        // the walk continues with an unknown class.
      } else if (!attr.ok()) {
        if (dim.has_value() || cur_class == kCstClass) {
          // CST oids may carry extra instance-of classes with attributes;
          // not statically resolvable.
          EmitWarning(report, DiagCode::kDynamicCstAttribute,
                      {step.offset, step.attribute.size()},
                      "attribute '" + step.attribute +
                          "' on a CST value in path " + path.ToString() +
                          " cannot be checked statically");
        } else {
          return EmitError(report, DiagCode::kUnknownAttribute,
                           {step.offset, step.attribute.size()},
                           "class '" + cur_class + "' has no attribute '" +
                               step.attribute + "' (in path " +
                               path.ToString() + ")");
        }
      } else {
        next_known = true;
        if ((*attr)->IsCst()) {
          next_class = CstClassName((*attr)->variables.size());
          cst_attr = *attr;
        } else {
          next_class = (*attr)->target_class;
        }
      }
    }
    // Selector handling.
    if (step.selector.has_value() &&
        step.selector->kind == ast::NameOrLiteral::Kind::kName &&
        scope->declared.count(step.selector->name)) {
      const std::string& var = step.selector->name;
      if (!scope->IsBound(var)) {
        if (!binding_allowed) {
          return EmitError(
              report, DiagCode::kUseBeforeBind,
              {step.selector->offset, var.size()},
              "variable '" + var +
                  "' cannot be bound inside this context (" +
                  path.ToString() + ")");
        }
        scope->Bind(var, next_known ? next_class : "");
        if (cst_attr != nullptr) {
          report->var_dims[var] = cst_attr->variables;
        }
      } else if (next_known && !scope->bound.at(var).empty()) {
        const std::string& have = scope->bound.at(var);
        if (have != next_class &&
            !db_->schema().IsSubclass(have, next_class) &&
            !db_->schema().IsSubclass(next_class, have)) {
          return EmitError(report, DiagCode::kClassConflict,
                           {step.selector->offset, var.size()},
                           "variable '" + var + "' is used both as '" +
                               have + "' and as '" + next_class +
                               "' (in path " + path.ToString() + ")");
        }
      }
    }
    cur_class = next_known ? next_class : "";
  }
  *tail_class = cur_class;
  return true;
}

bool Analyzer::CheckArith(const ast::ArithExpr& expr, const Scope& scope,
                          AnalysisReport* report) const {
  using Kind = ast::ArithExpr::Kind;
  switch (expr.kind) {
    case Kind::kConst:
      return true;
    case Kind::kName:
      if (scope.declared.count(expr.name) && !scope.IsBound(expr.name)) {
        return EmitError(report, DiagCode::kUseBeforeBind,
                         {expr.offset, expr.name.size()},
                         "query variable '" + expr.name +
                             "' is used in a formula before it is bound");
      }
      if (scope.IsBound(expr.name)) {
        const std::string& cls = scope.bound.at(expr.name);
        if (!cls.empty() && cls != kIntClass && cls != kRealClass) {
          return EmitError(
              report, DiagCode::kNotNumeric, {expr.offset, expr.name.size()},
              "query variable '" + expr.name + "' of class '" + cls +
                  "' is used as a number in a formula");
        }
      }
      return true;
    case Kind::kPath: {
      Scope copy = scope;  // Paths in arithmetic never bind.
      std::string cls;
      if (!CheckPath(*expr.path, &copy, report, /*binding_allowed=*/false,
                     &cls)) {
        return false;
      }
      if (!cls.empty() && cls != kIntClass && cls != kRealClass) {
        return EmitError(report, DiagCode::kNotNumeric, {expr.offset, 1},
                         "path " + expr.path->ToString() + " of class '" +
                             cls + "' is used as a number in a formula");
      }
      return true;
    }
    case Kind::kNeg:
      return CheckArith(*expr.lhs, scope, report);
    default:
      return CheckArith(*expr.lhs, scope, report) &&
             CheckArith(*expr.rhs, scope, report);
  }
}

bool Analyzer::CheckFormula(const ast::Formula& formula, const Scope& scope,
                            AnalysisReport* report) const {
  using Kind = ast::Formula::Kind;
  switch (formula.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kAtom:
      return CheckArith(*formula.atom_lhs, scope, report) &&
             CheckArith(*formula.atom_rhs, scope, report);
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : formula.children) {
        if (!CheckFormula(*child, scope, report)) return false;
      }
      return true;
    case Kind::kProject:
    case Kind::kExists:
      return CheckFormula(*formula.children[0], scope, report);
    case Kind::kPred: {
      Scope copy = scope;
      std::string cls;
      if (!CheckPath(*formula.pred, &copy, report,
                     /*binding_allowed=*/false, &cls)) {
        return false;
      }
      auto dim = CstDimensionOf(cls);
      if (!cls.empty() && !dim.has_value() && cls != kCstClass &&
          !db_->schema().IsSubclass(cls, kCstClass)) {
        return EmitError(report, DiagCode::kNotCstPredicate,
                         {formula.pred->offset, 1},
                         "predicate " + formula.pred->ToString() +
                             " has class '" + cls +
                             "', which is not a CST class");
      }
      if (dim.has_value() && formula.pred_args.has_value() &&
          formula.pred_args->size() != *dim) {
        return EmitError(
            report, DiagCode::kArityMismatch, {formula.pred->offset, 1},
            "predicate " + formula.pred->ToString() + " has dimension " +
                std::to_string(*dim) + " but is invoked with " +
                std::to_string(formula.pred_args->size()) + " variables");
      }
      return true;
    }
  }
  return EmitError(report, DiagCode::kBadSelectFormula,
                   {formula.offset, 1}, "bad formula node");
}

bool Analyzer::CheckWhere(const ast::WhereExpr& where, Scope* scope,
                          AnalysisReport* report) const {
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd:
      for (const auto& child : where.children) {
        if (!CheckWhere(*child, scope, report)) return false;
      }
      return true;
    case Kind::kOr: {
      // Bindings inside OR branches do not escape (a row may satisfy only
      // one branch).
      bool ok = true;
      for (const auto& child : where.children) {
        Scope branch = *scope;
        ok = CheckWhere(*child, &branch, report) && ok;
      }
      return ok;
    }
    case Kind::kNot: {
      Scope inner = *scope;
      return CheckWhere(*where.children[0], &inner, report);
    }
    case Kind::kPathPred: {
      std::string cls;
      return CheckPath(where.path, scope, report, /*binding_allowed=*/true,
                       &cls);
    }
    case Kind::kCompare: {
      for (const ast::WhereExpr::Operand* op :
           {&where.cmp_lhs, &where.cmp_rhs}) {
        if (op->kind == ast::WhereExpr::Operand::Kind::kPath) {
          std::string cls;
          if (!CheckPath(op->path, scope, report, /*binding_allowed=*/true,
                         &cls)) {
            return false;
          }
        }
      }
      return true;
    }
    case Kind::kFormulaSat:
      return CheckFormula(*where.formula, *scope, report);
    case Kind::kEntails:
      return CheckFormula(*where.ent_lhs, *scope, report) &&
             CheckFormula(*where.ent_rhs, *scope, report);
  }
  return false;
}

AnalysisReport Analyzer::Check(const ast::Query& query) const {
  AnalysisReport report;
  Scope scope;
  scope.declared = CollectDeclaredVars(query, *db_);

  // FROM: report every unknown class, not just the first.
  for (const ast::FromItem& item : query.from) {
    if (!db_->schema().HasClass(item.class_name)) {
      EmitError(&report, DiagCode::kUnknownClass,
                {item.class_offset, item.class_name.size()},
                "FROM: unknown class '" + item.class_name + "'");
      continue;
    }
    if (scope.IsBound(item.var)) {
      EmitWarning(&report, DiagCode::kDuplicateFromVar,
                  {item.var_offset, item.var.size()},
                  "FROM variable '" + item.var +
                      "' is declared twice (instances must agree)");
    }
    scope.Bind(item.var, item.class_name);
  }
  // View header.
  if (query.is_view) {
    if (!db_->schema().HasClass(query.view_parent)) {
      EmitError(&report, DiagCode::kUnknownViewParent,
                {query.view_parent_offset, query.view_parent.size()},
                "view parent class '" + query.view_parent +
                    "' does not exist");
    }
    for (const ast::SignatureItem& sig : query.signature) {
      if (!db_->schema().HasClass(sig.target_class)) {
        EmitError(&report, DiagCode::kUnknownSigTarget,
                  {sig.target_offset, sig.target_class.size()},
                  "signature target class '" + sig.target_class +
                      "' does not exist");
      }
    }
    if (!scope.declared.count(query.view_name) &&
        db_->schema().HasClass(query.view_name)) {
      EmitError(&report, DiagCode::kViewExists,
                {query.view_name_offset, query.view_name.size()},
                "view class '" + query.view_name + "' already exists");
    }
  }
  // WHERE (binds bracket variables in conjunct order). The walk stops at
  // the first error inside the tree — bindings are unreliable past it —
  // but later clauses still get checked.
  if (query.where) {
    CheckWhere(*query.where, &scope, &report);
  }
  // SELECT items see the post-WHERE scope; each item checks
  // independently so one broken column does not hide the next.
  for (const ast::SelectItem& item : query.select) {
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath: {
        Scope copy = scope;
        std::string cls;
        CheckPath(item.path, &copy, &report, /*binding_allowed=*/false,
                  &cls);
        break;
      }
      case ast::SelectItem::Kind::kFormulaObject:
        if (item.formula->kind != ast::Formula::Kind::kProject) {
          EmitError(&report, DiagCode::kBadSelectFormula, {item.offset, 1},
                    "SELECT constraint item must be a projection "
                    "((x1,..,xn) | phi)");
          break;
        }
        CheckFormula(*item.formula, scope, &report);
        break;
      case ast::SelectItem::Kind::kOptimize:
        if (CheckArith(*item.objective, scope, &report)) {
          CheckFormula(*item.formula, scope, &report);
        }
        break;
    }
  }
  // OID FUNCTION OF variables must be bound.
  for (size_t i = 0; i < query.oid_function_of.size(); ++i) {
    const std::string& var = query.oid_function_of[i];
    if (!scope.IsBound(var)) {
      size_t offset = i < query.oid_function_of_offsets.size()
                          ? query.oid_function_of_offsets[i]
                          : 0;
      EmitError(&report, DiagCode::kUnboundOidVar, {offset, var.size()},
                "OID FUNCTION OF: variable '" + var + "' is never bound");
    }
  }
  for (const auto& [var, cls] : scope.bound) {
    if (!cls.empty()) report.var_classes.emplace(var, cls);
  }
  // §3 family pass: only meaningful when the query is well-typed.
  if (!report.has_errors()) {
    FamilyChecker families(db_, &scope.declared, &report.var_dims);
    families.CheckQuery(query, &report.diagnostics);
  }
  return report;
}

Result<AnalysisReport> Analyzer::Analyze(const ast::Query& query) const {
  AnalysisReport report = Check(query);
  for (const Diagnostic& diag : report.diagnostics) {
    if (diag.severity == Severity::kError) {
      return Status(DiagCodeToStatusCode(diag.code), diag.message);
    }
  }
  return report;
}

CheckResult CheckQueryText(const Database& db, const std::string& text) {
  CheckResult out;
  Diagnostic parse_diag;
  Result<ast::Query> query = ParseQuery(text, &parse_diag);
  if (!query.ok()) {
    out.diagnostics.push_back(std::move(parse_diag));
    return out;
  }
  out.parsed = true;
  Analyzer analyzer(&db);
  AnalysisReport report = analyzer.Check(*query);
  out.diagnostics = std::move(report.diagnostics);
  out.var_classes = std::move(report.var_classes);
  std::stable_sort(out.diagnostics.begin(), out.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.span.offset < b.span.offset;
                   });
  return out;
}

}  // namespace lyric
