#include "query/analyzer.h"

#include "query/path_walker.h"

namespace lyric {

// Variables known to be bound at the current point, with their inferred
// classes ("" = bound but class unknown).
struct Analyzer::Scope {
  std::map<std::string, std::string> bound;
  std::set<std::string> declared;

  bool IsBound(const std::string& var) const { return bound.count(var) > 0; }
  void Bind(const std::string& var, const std::string& cls) {
    auto [it, inserted] = bound.emplace(var, cls);
    if (!inserted && it->second.empty()) it->second = cls;
  }
};

namespace {

// True for identifiers that denote attribute variables (no such attribute
// anywhere in the schema).
bool IsAttributeVariable(const Database& db, const std::string& name) {
  for (const std::string& cls : db.schema().ClassNames()) {
    if (db.schema().FindAttribute(cls, name).ok()) return false;
  }
  return !db.methods().HasAnywhere(name);
}

std::optional<size_t> CstDimensionOf(const std::string& cls) {
  return ParseCstClassName(cls);
}

}  // namespace

Result<std::string> Analyzer::AnalyzePath(const ast::PathExpr& path,
                                          Scope* scope,
                                          AnalysisReport* report,
                                          bool binding_allowed) const {
  std::string cur_class;
  if (path.head.kind == ast::NameOrLiteral::Kind::kLiteral) {
    cur_class = "";  // Literal heads type as their oid kind; steps rare.
  } else if (scope->declared.count(path.head.name)) {
    if (!scope->IsBound(path.head.name)) {
      return Status::TypeError(
          "variable '" + path.head.name + "' is used in path " +
          path.ToString() +
          " before it is bound (bind it via FROM or an earlier conjunct)");
    }
    cur_class = scope->bound.at(path.head.name);
  } else {
    // Symbolic oid.
    Oid sym = Oid::Symbol(path.head.name);
    if (db_->HasObject(sym)) {
      Result<std::string> cls = db_->ClassOf(sym);
      if (cls.ok()) cur_class = *cls;
    } else {
      report->warnings.push_back("symbolic oid '" + path.head.name +
                                 "' does not name a stored object");
    }
  }
  for (const ast::PathExpr::Step& step : path.steps) {
    std::string next_class;
    bool next_known = false;
    if (IsAttributeVariable(*db_, step.attribute)) {
      report->warnings.push_back(
          "'" + step.attribute + "' in path " + path.ToString() +
          " is a higher-order attribute variable (enumerates attributes)");
    } else if (!cur_class.empty()) {
      auto dim = CstDimensionOf(cur_class);
      Result<const AttributeDef*> attr =
          db_->schema().FindAttribute(cur_class, step.attribute);
      if (!attr.ok() &&
          db_->methods().Has(db_->schema(), cur_class, step.attribute)) {
        // A 0-ary method step; its result class depends on dispatch, so
        // the walk continues with an unknown class.
      } else if (!attr.ok()) {
        if (dim.has_value() || cur_class == kCstClass) {
          // CST oids may carry extra instance-of classes with attributes;
          // not statically resolvable.
          report->warnings.push_back("attribute '" + step.attribute +
                                     "' on a CST value in path " +
                                     path.ToString() +
                                     " cannot be checked statically");
        } else {
          return Status::TypeError("class '" + cur_class +
                                   "' has no attribute '" + step.attribute +
                                   "' (in path " + path.ToString() + ")");
        }
      } else {
        next_known = true;
        next_class = (*attr)->IsCst()
                         ? CstClassName((*attr)->variables.size())
                         : (*attr)->target_class;
      }
    }
    // Selector handling.
    if (step.selector.has_value() &&
        step.selector->kind == ast::NameOrLiteral::Kind::kName &&
        scope->declared.count(step.selector->name)) {
      const std::string& var = step.selector->name;
      if (!scope->IsBound(var)) {
        if (!binding_allowed) {
          return Status::TypeError(
              "variable '" + var + "' cannot be bound inside this context (" +
              path.ToString() + ")");
        }
        scope->Bind(var, next_known ? next_class : "");
      } else if (next_known && !scope->bound.at(var).empty()) {
        const std::string& have = scope->bound.at(var);
        if (have != next_class &&
            !db_->schema().IsSubclass(have, next_class) &&
            !db_->schema().IsSubclass(next_class, have)) {
          return Status::TypeError(
              "variable '" + var + "' is used both as '" + have +
              "' and as '" + next_class + "' (in path " + path.ToString() +
              ")");
        }
      }
    }
    cur_class = next_known ? next_class : "";
  }
  return cur_class;
}

Status Analyzer::AnalyzeArith(const ast::ArithExpr& expr, const Scope& scope,
                              AnalysisReport* report) const {
  using Kind = ast::ArithExpr::Kind;
  switch (expr.kind) {
    case Kind::kConst:
      return Status::OK();
    case Kind::kName:
      if (scope.declared.count(expr.name) && !scope.IsBound(expr.name)) {
        return Status::TypeError("query variable '" + expr.name +
                                 "' is used in a formula before it is "
                                 "bound");
      }
      if (scope.IsBound(expr.name)) {
        const std::string& cls = scope.bound.at(expr.name);
        if (!cls.empty() && cls != kIntClass && cls != kRealClass) {
          return Status::TypeError(
              "query variable '" + expr.name + "' of class '" + cls +
              "' is used as a number in a formula");
        }
      }
      return Status::OK();
    case Kind::kPath: {
      Scope copy = scope;  // Paths in arithmetic never bind.
      LYRIC_ASSIGN_OR_RETURN(std::string cls,
                             AnalyzePath(*expr.path, &copy, report,
                                         /*binding_allowed=*/false));
      if (!cls.empty() && cls != kIntClass && cls != kRealClass) {
        return Status::TypeError("path " + expr.path->ToString() +
                                 " of class '" + cls +
                                 "' is used as a number in a formula");
      }
      return Status::OK();
    }
    case Kind::kNeg:
      return AnalyzeArith(*expr.lhs, scope, report);
    default:
      LYRIC_RETURN_NOT_OK(AnalyzeArith(*expr.lhs, scope, report));
      return AnalyzeArith(*expr.rhs, scope, report);
  }
}

Status Analyzer::AnalyzeFormula(const ast::Formula& formula,
                                const Scope& scope,
                                AnalysisReport* report) const {
  using Kind = ast::Formula::Kind;
  switch (formula.kind) {
    case Kind::kTrue:
    case Kind::kFalse:
      return Status::OK();
    case Kind::kAtom:
      LYRIC_RETURN_NOT_OK(AnalyzeArith(*formula.atom_lhs, scope, report));
      return AnalyzeArith(*formula.atom_rhs, scope, report);
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const auto& child : formula.children) {
        LYRIC_RETURN_NOT_OK(AnalyzeFormula(*child, scope, report));
      }
      return Status::OK();
    case Kind::kProject:
    case Kind::kExists:
      return AnalyzeFormula(*formula.children[0], scope, report);
    case Kind::kPred: {
      Scope copy = scope;
      LYRIC_ASSIGN_OR_RETURN(std::string cls,
                             AnalyzePath(*formula.pred, &copy, report,
                                         /*binding_allowed=*/false));
      auto dim = CstDimensionOf(cls);
      if (!cls.empty() && !dim.has_value() && cls != kCstClass &&
          !db_->schema().IsSubclass(cls, kCstClass)) {
        return Status::TypeError("predicate " + formula.pred->ToString() +
                                 " has class '" + cls +
                                 "', which is not a CST class");
      }
      if (dim.has_value() && formula.pred_args.has_value() &&
          formula.pred_args->size() != *dim) {
        return Status::TypeError(
            "predicate " + formula.pred->ToString() + " has dimension " +
            std::to_string(*dim) + " but is invoked with " +
            std::to_string(formula.pred_args->size()) + " variables");
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad formula node");
}

Status Analyzer::AnalyzeWhere(const ast::WhereExpr& where, Scope* scope,
                              AnalysisReport* report) const {
  using Kind = ast::WhereExpr::Kind;
  switch (where.kind) {
    case Kind::kAnd:
      for (const auto& child : where.children) {
        LYRIC_RETURN_NOT_OK(AnalyzeWhere(*child, scope, report));
      }
      return Status::OK();
    case Kind::kOr: {
      // Bindings inside OR branches do not escape (a row may satisfy only
      // one branch).
      for (const auto& child : where.children) {
        Scope branch = *scope;
        LYRIC_RETURN_NOT_OK(AnalyzeWhere(*child, &branch, report));
      }
      return Status::OK();
    }
    case Kind::kNot: {
      Scope inner = *scope;
      return AnalyzeWhere(*where.children[0], &inner, report);
    }
    case Kind::kPathPred:
      return AnalyzePath(where.path, scope, report, /*binding_allowed=*/true)
          .status();
    case Kind::kCompare: {
      for (const ast::WhereExpr::Operand* op :
           {&where.cmp_lhs, &where.cmp_rhs}) {
        if (op->kind == ast::WhereExpr::Operand::Kind::kPath) {
          LYRIC_RETURN_NOT_OK(
              AnalyzePath(op->path, scope, report, /*binding_allowed=*/true)
                  .status());
        }
      }
      return Status::OK();
    }
    case Kind::kFormulaSat:
      return AnalyzeFormula(*where.formula, *scope, report);
    case Kind::kEntails:
      LYRIC_RETURN_NOT_OK(AnalyzeFormula(*where.ent_lhs, *scope, report));
      return AnalyzeFormula(*where.ent_rhs, *scope, report);
  }
  return Status::Internal("bad WHERE node");
}

Result<AnalysisReport> Analyzer::Analyze(const ast::Query& query) const {
  AnalysisReport report;
  Scope scope;
  scope.declared = CollectDeclaredVars(query, *db_);

  // FROM.
  for (const ast::FromItem& item : query.from) {
    if (!db_->schema().HasClass(item.class_name)) {
      return Status::NotFound("FROM: unknown class '" + item.class_name +
                              "'");
    }
    if (scope.IsBound(item.var)) {
      report.warnings.push_back(
          "FROM variable '" + item.var +
          "' is declared twice (instances must agree)");
    }
    scope.Bind(item.var, item.class_name);
  }
  // View header.
  if (query.is_view) {
    if (!db_->schema().HasClass(query.view_parent)) {
      return Status::NotFound("view parent class '" + query.view_parent +
                              "' does not exist");
    }
    for (const ast::SignatureItem& sig : query.signature) {
      if (!db_->schema().HasClass(sig.target_class)) {
        return Status::NotFound("signature target class '" +
                                sig.target_class + "' does not exist");
      }
    }
    if (!scope.declared.count(query.view_name) &&
        db_->schema().HasClass(query.view_name)) {
      return Status::AlreadyExists("view class '" + query.view_name +
                                   "' already exists");
    }
  }
  // WHERE (binds bracket variables in conjunct order).
  if (query.where) {
    LYRIC_RETURN_NOT_OK(AnalyzeWhere(*query.where, &scope, &report));
  }
  // SELECT items see the post-WHERE scope.
  for (const ast::SelectItem& item : query.select) {
    switch (item.kind) {
      case ast::SelectItem::Kind::kPath: {
        Scope copy = scope;
        LYRIC_RETURN_NOT_OK(AnalyzePath(item.path, &copy, &report,
                                        /*binding_allowed=*/false)
                                .status());
        break;
      }
      case ast::SelectItem::Kind::kFormulaObject:
        if (item.formula->kind != ast::Formula::Kind::kProject) {
          return Status::TypeError(
              "SELECT constraint item must be a projection "
              "((x1,..,xn) | phi)");
        }
        LYRIC_RETURN_NOT_OK(AnalyzeFormula(*item.formula, scope, &report));
        break;
      case ast::SelectItem::Kind::kOptimize:
        LYRIC_RETURN_NOT_OK(AnalyzeArith(*item.objective, scope, &report));
        LYRIC_RETURN_NOT_OK(AnalyzeFormula(*item.formula, scope, &report));
        break;
    }
  }
  // OID FUNCTION OF variables must be bound.
  for (const std::string& var : query.oid_function_of) {
    if (!scope.IsBound(var)) {
      return Status::TypeError("OID FUNCTION OF: variable '" + var +
                               "' is never bound");
    }
  }
  report.var_classes.clear();
  for (const auto& [var, cls] : scope.bound) {
    if (!cls.empty()) report.var_classes.emplace(var, cls);
  }
  return report;
}

}  // namespace lyric
