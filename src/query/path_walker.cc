#include "query/path_walker.h"

#include "exec/governor.h"

namespace lyric {

namespace {

struct WalkState {
  Binding binding;
  Oid cur;
  IfaceMap iface;
  std::vector<DimInfo> dims;  // Set when `cur` was reached via a CST attr.
  bool cst_tail = false;
};

void CollectFromFormula(const ast::Formula& f, std::set<std::string>* out,
                        const Database& db);

// Is `name` an attribute or method of any schema class? Identifiers in
// attribute position that name neither anywhere are higher-order attribute
// variables (§2.2's querying-without-full-schema-knowledge mechanism).
bool IsKnownAttribute(const Database& db, const std::string& name) {
  for (const std::string& cls : db.schema().ClassNames()) {
    if (db.schema().FindAttribute(cls, name).ok()) return true;
  }
  return db.methods().HasAnywhere(name);
}

void CollectFromPath(const ast::PathExpr& p, std::set<std::string>* out,
                     const Database& db) {
  for (const auto& step : p.steps) {
    if (step.selector.has_value() &&
        step.selector->kind == ast::NameOrLiteral::Kind::kName) {
      // A bracket identifier is a variable unless it names a stored
      // symbolic object (g-selector).
      if (!db.HasObject(Oid::Symbol(step.selector->name))) {
        out->insert(step.selector->name);
      }
    }
    if (!IsKnownAttribute(db, step.attribute)) {
      out->insert(step.attribute);  // Attribute variable.
    }
  }
}

void CollectFromArith(const ast::ArithExpr& a, std::set<std::string>* out,
                      const Database& db) {
  if (a.path) CollectFromPath(*a.path, out, db);
  if (a.lhs) CollectFromArith(*a.lhs, out, db);
  if (a.rhs) CollectFromArith(*a.rhs, out, db);
}

void CollectFromFormula(const ast::Formula& f, std::set<std::string>* out,
                        const Database& db) {
  if (f.atom_lhs) CollectFromArith(*f.atom_lhs, out, db);
  if (f.atom_rhs) CollectFromArith(*f.atom_rhs, out, db);
  if (f.pred) CollectFromPath(*f.pred, out, db);
  for (const auto& child : f.children) CollectFromFormula(*child, out, db);
}

void CollectFromWhere(const ast::WhereExpr& w, std::set<std::string>* out,
                      const Database& db) {
  for (const auto& child : w.children) CollectFromWhere(*child, out, db);
  switch (w.kind) {
    case ast::WhereExpr::Kind::kPathPred:
      CollectFromPath(w.path, out, db);
      break;
    case ast::WhereExpr::Kind::kCompare:
      if (w.cmp_lhs.kind == ast::WhereExpr::Operand::Kind::kPath) {
        CollectFromPath(w.cmp_lhs.path, out, db);
      }
      if (w.cmp_rhs.kind == ast::WhereExpr::Operand::Kind::kPath) {
        CollectFromPath(w.cmp_rhs.path, out, db);
      }
      break;
    case ast::WhereExpr::Kind::kFormulaSat:
      CollectFromFormula(*w.formula, out, db);
      break;
    case ast::WhereExpr::Kind::kEntails:
      CollectFromFormula(*w.ent_lhs, out, db);
      CollectFromFormula(*w.ent_rhs, out, db);
      break;
    default:
      break;
  }
}

}  // namespace

std::set<std::string> CollectDeclaredVars(const ast::Query& query,
                                          const Database& db) {
  std::set<std::string> out;
  for (const auto& item : query.from) out.insert(item.var);
  if (query.where) CollectFromWhere(*query.where, &out, db);
  for (const auto& item : query.select) {
    if (item.kind == ast::SelectItem::Kind::kPath) {
      CollectFromPath(item.path, &out, db);
    }
    if (item.formula) CollectFromFormula(*item.formula, &out, db);
    if (item.objective) CollectFromArith(*item.objective, &out, db);
  }
  if (query.is_view && !db.schema().HasClass(query.view_name)) {
    // A view named by a query variable (the higher-order Region pattern)
    // only counts as one when the name is already a FROM variable.
    // (A fresh class name must not be mistaken for a variable.)
  }
  return out;
}

Result<IfaceMap> DefaultIfaceMap(const Oid& oid, const Database& db) {
  IfaceMap out;
  Result<std::string> cls = db.ClassOf(oid);
  if (!cls.ok()) return out;  // Literals have no interface.
  LYRIC_ASSIGN_OR_RETURN(const ClassDef* def, db.schema().GetClass(*cls));
  for (const std::string& v : def->interface_vars) {
    out[v] = DimInfo{v, oid.ToString() + "." + v};
  }
  return out;
}

Result<std::vector<PathResult>> WalkPath(
    const ast::PathExpr& path, const Binding& binding, Database& db,
    const std::set<std::string>& declared) {
  // Resolve the head selector.
  WalkState start;
  start.binding = binding;
  if (path.head.kind == ast::NameOrLiteral::Kind::kLiteral) {
    start.cur = path.head.literal;
  } else if (declared.count(path.head.name)) {
    // An attribute variable at head position denotes the attribute name
    // it is bound to (as a string oid); the path cannot continue.
    auto ait = binding.attr_vars.find(path.head.name);
    if (ait != binding.attr_vars.end()) {
      if (!path.steps.empty()) {
        return Status::TypeError("attribute variable '" + path.head.name +
                                 "' cannot head a multi-step path");
      }
      return std::vector<PathResult>{
          PathResult{binding, Oid::Str(ait->second), {}}};
    }
    auto it = binding.vars.find(path.head.name);
    if (it == binding.vars.end()) {
      return Status::InvalidArgument(
          "variable '" + path.head.name +
          "' is unbound at the head of path " + path.ToString() +
          "; bind it via FROM or an earlier predicate");
    }
    start.cur = it->second;
    auto mit = binding.iface_maps.find(path.head.name);
    if (mit != binding.iface_maps.end()) {
      start.iface = mit->second;
    } else {
      LYRIC_ASSIGN_OR_RETURN(start.iface, DefaultIfaceMap(start.cur, db));
    }
    auto dit = binding.cst_dims.find(path.head.name);
    if (dit != binding.cst_dims.end()) {
      start.dims = dit->second;
      start.cst_tail = start.cur.IsCst();
    }
  } else {
    start.cur = Oid::Symbol(path.head.name);
    LYRIC_ASSIGN_OR_RETURN(start.iface, DefaultIfaceMap(start.cur, db));
  }

  std::vector<WalkState> states{std::move(start)};
  for (const ast::PathExpr::Step& step : path.steps) {
    // Attribute-variable enumeration can fan the state set out by the
    // schema width at every step; keep governed walks cancellable.
    LYRIC_RETURN_NOT_OK(exec::CheckCancellation("path_walker.step"));
    std::vector<WalkState> next;
    for (WalkState& state : states) {
      // Which attribute names apply at this step?
      std::vector<std::pair<std::string, bool>> attr_names;  // (name, bind?)
      if (declared.count(step.attribute)) {
        auto it = state.binding.attr_vars.find(step.attribute);
        if (it != state.binding.attr_vars.end()) {
          attr_names.emplace_back(it->second, false);
        } else {
          // Higher-order attribute variable: enumerate.
          Result<std::string> cls = db.ClassOf(state.cur);
          if (!cls.ok()) continue;
          Result<std::vector<const AttributeDef*>> attrs =
              db.schema().AllAttributes(*cls);
          if (!attrs.ok()) continue;
          for (const AttributeDef* a : *attrs) {
            attr_names.emplace_back(a->name, true);
          }
        }
      } else {
        attr_names.emplace_back(step.attribute, false);
      }
      for (const auto& [attr_name, bind_attr_var] : attr_names) {
        Result<std::string> cls = db.DynamicClassOf(state.cur);
        if (!cls.ok()) continue;  // Dead end: unmanaged symbol.
        Result<const AttributeDef*> def =
            db.schema().FindAttribute(*cls, attr_name);
        Result<Value> value = Status::NotFound("");
        bool via_method = false;
        if (def.ok()) {
          value = db.GetAttribute(state.cur, attr_name);
          if (!value.ok()) continue;  // Attribute unset on this object.
        } else {
          // "An attribute is regarded as a 0-ary method" (§2.1): fall back
          // to a method of the same name with no arguments.
          if (!db.methods().Has(db.schema(), *cls, attr_name)) continue;
          value = db.InvokeMethod(state.cur, attr_name, {});
          if (!value.ok()) continue;
          via_method = true;
        }

        for (const Oid& element : value->elements()) {
          WalkState out;
          out.binding = state.binding;
          if (bind_attr_var) {
            out.binding.attr_vars[step.attribute] = attr_name;
          }
          out.cur = element;
          if (via_method) {
            // Method results carry no schema dimension context.
            out.cst_tail = element.IsCst();
          } else if ((*def)->IsCst()) {
            out.cst_tail = true;
            for (const std::string& v : (*def)->variables) {
              auto vit = state.iface.find(v);
              if (vit != state.iface.end()) {
                out.dims.push_back(vit->second);
              } else {
                out.dims.push_back(
                    DimInfo{v, state.cur.ToString() + "." + v});
              }
            }
          } else {
            // Interface renaming into the target object's namespace.
            Result<const ClassDef*> target =
                db.schema().GetClass((*def)->target_class);
            if (target.ok() && !(*target)->interface_vars.empty()) {
              const std::vector<std::string>& formals =
                  (*target)->interface_vars;
              const std::vector<std::string>& actuals =
                  (*def)->variables.empty() ? formals : (*def)->variables;
              for (size_t i = 0; i < formals.size(); ++i) {
                auto vit = state.iface.find(actuals[i]);
                out.iface[formals[i]] =
                    vit != state.iface.end()
                        ? vit->second
                        : DimInfo{actuals[i],
                                  state.cur.ToString() + "." + actuals[i]};
              }
            }
          }
          // Apply the bracket selector.
          if (step.selector.has_value()) {
            const ast::NameOrLiteral& sel = *step.selector;
            if (sel.kind == ast::NameOrLiteral::Kind::kLiteral) {
              if (element != sel.literal) continue;
            } else if (declared.count(sel.name)) {
              auto bit = out.binding.vars.find(sel.name);
              if (bit != out.binding.vars.end()) {
                if (bit->second != element) continue;
                // Refresh context info for an already-bound variable only
                // if absent (first binding wins).
                if (out.cst_tail && !out.binding.cst_dims.count(sel.name)) {
                  out.binding.cst_dims[sel.name] = out.dims;
                }
              } else {
                out.binding.vars[sel.name] = element;
                if (out.cst_tail) {
                  out.binding.cst_dims[sel.name] = out.dims;
                } else {
                  out.binding.iface_maps[sel.name] = out.iface;
                }
              }
            } else {
              if (element != Oid::Symbol(sel.name)) continue;
            }
          }
          next.push_back(std::move(out));
        }
      }
    }
    states = std::move(next);
  }

  std::vector<PathResult> out;
  out.reserve(states.size());
  for (WalkState& s : states) {
    out.push_back(PathResult{std::move(s.binding), std::move(s.cur),
                             std::move(s.dims)});
  }
  return out;
}

}  // namespace lyric
