#include "query/parser.h"

#include "query/lexer.h"

namespace lyric {

namespace {

using ast::ArithExpr;
using ast::Formula;
using ast::FromItem;
using ast::NameOrLiteral;
using ast::PathExpr;
using ast::Query;
using ast::SelectItem;
using ast::SignatureItem;
using ast::WhereExpr;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    if (At(TokenKind::kCreate)) {
      LYRIC_RETURN_NOT_OK(ParseViewHeader(&q));
    }
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSelect));
    for (;;) {
      LYRIC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      q.select.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) break;
    }
    if (Accept(TokenKind::kSignature)) {
      LYRIC_RETURN_NOT_OK(ParseSignature(&q));
    }
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    for (;;) {
      FromItem item;
      item.class_offset = Cur().offset;
      LYRIC_ASSIGN_OR_RETURN(item.class_name, ParseClassName());
      item.var_offset = Cur().offset;
      LYRIC_ASSIGN_OR_RETURN(item.var, ExpectIdent());
      q.from.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) break;
    }
    if (Accept(TokenKind::kOid)) {
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kFunction));
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kOf));
      for (;;) {
        q.oid_function_of_offsets.push_back(Cur().offset);
        LYRIC_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
        q.oid_function_of.push_back(std::move(var));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    if (Accept(TokenKind::kWhere)) {
      LYRIC_ASSIGN_OR_RETURN(auto w, ParseWhereOr());
      q.where = std::move(w);
    }
    Accept(TokenKind::kSemicolon);
    if (!At(TokenKind::kEnd)) {
      return Err("unexpected trailing input");
    }
    return q;
  }

  Result<Formula> ParseStandaloneFormula() {
    LYRIC_ASSIGN_OR_RETURN(auto f, ParseFormulaOr());
    if (!At(TokenKind::kEnd)) return Err("unexpected trailing input");
    return std::move(*f);
  }

  // Parses one formula and reports how many tokens it consumed.
  Result<Formula> ParsePrefixFormula(size_t* consumed) {
    LYRIC_ASSIGN_OR_RETURN(auto f, ParseFormulaOr());
    *consumed = pos_;
    return std::move(*f);
  }

  // Position of the token the last reported error points at, for
  // diagnostics with source spans.
  size_t error_offset() const { return error_offset_; }
  size_t error_length() const { return error_length_; }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind kind) {
    if (!Accept(kind)) {
      RecordError();
      return Status::ParseError(std::string("expected ") +
                                TokenKindToString(kind) + " but found '" +
                                Describe(Cur()) + "' at offset " +
                                std::to_string(Cur().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (!At(TokenKind::kIdent)) {
      RecordError();
      return Status::ParseError("expected identifier but found '" +
                                Describe(Cur()) + "' at offset " +
                                std::to_string(Cur().offset));
    }
    std::string out = Cur().text;
    ++pos_;
    return out;
  }
  Status Err(const std::string& msg) {
    RecordError();
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Cur().offset) + " (near '" +
                              Describe(Cur()) + "')");
  }
  void RecordError() {
    error_offset_ = Cur().offset;
    if (Cur().kind == TokenKind::kEnd) {
      error_length_ = 1;
    } else {
      std::string near = Describe(Cur());
      error_length_ = near.empty() ? 1 : near.size();
    }
  }
  static std::string Describe(const Token& t) {
    if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kNumber ||
        t.kind == TokenKind::kString) {
      return t.text;
    }
    return TokenKindToString(t.kind);
  }

  // --- pieces --------------------------------------------------------------

  Status ParseViewHeader(Query* q) {
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kCreate));
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kView));
    q->view_name_offset = Cur().offset;
    LYRIC_ASSIGN_OR_RETURN(q->view_name, ExpectIdent());
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kAs));
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSubclass));
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kOf));
    q->view_parent_offset = Cur().offset;
    LYRIC_ASSIGN_OR_RETURN(q->view_parent, ParseClassName());
    q->is_view = true;
    return Status::OK();
  }

  Status ParseSignature(Query* q) {
    for (;;) {
      SignatureItem item;
      LYRIC_ASSIGN_OR_RETURN(item.attr, ExpectIdent());
      if (Accept(TokenKind::kDArrow)) {
        item.set_valued = true;
      } else {
        LYRIC_RETURN_NOT_OK(Expect(TokenKind::kArrow));
      }
      item.target_offset = Cur().offset;
      LYRIC_ASSIGN_OR_RETURN(item.target_class, ParseClassName());
      q->signature.push_back(std::move(item));
      if (!Accept(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  // Class names: ident, possibly CST(2).
  Result<std::string> ParseClassName() {
    LYRIC_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (name == "CST" && At(TokenKind::kLParen)) {
      size_t save = pos_;
      if (Accept(TokenKind::kLParen) && At(TokenKind::kNumber)) {
        std::string digits = Cur().text;
        ++pos_;
        if (Accept(TokenKind::kRParen)) {
          return "CST(" + digits + ")";
        }
      }
      pos_ = save;
    }
    return name;
  }

  Result<NameOrLiteral> ParseSelector() {
    size_t offset = Cur().offset;
    auto with_offset = [offset](NameOrLiteral n) {
      n.offset = offset;
      return n;
    };
    if (At(TokenKind::kIdent)) {
      std::string name = Cur().text;
      ++pos_;
      return with_offset(NameOrLiteral::Name(std::move(name)));
    }
    if (At(TokenKind::kString)) {
      Oid lit = Oid::Str(Cur().text);
      ++pos_;
      return with_offset(NameOrLiteral::Lit(std::move(lit)));
    }
    if (At(TokenKind::kNumber)) {
      Rational num = Cur().number;
      ++pos_;
      return with_offset(NameOrLiteral::Lit(
          num.IsInteger() ? Oid::Int(num.num().ToInt64().ValueOr(0))
                          : Oid::Real(num)));
    }
    if (Accept(TokenKind::kTrue)) {
      return with_offset(NameOrLiteral::Lit(Oid::Bool(true)));
    }
    if (Accept(TokenKind::kFalse)) {
      return with_offset(NameOrLiteral::Lit(Oid::Bool(false)));
    }
    return Err("expected a selector (identifier or literal)");
  }

  // path := selector ('.' ident ['[' selector ']'])*
  Result<PathExpr> ParsePath() {
    PathExpr out;
    out.offset = Cur().offset;
    LYRIC_ASSIGN_OR_RETURN(out.head, ParseSelector());
    while (At(TokenKind::kDot)) {
      ++pos_;
      PathExpr::Step step;
      step.offset = Cur().offset;
      LYRIC_ASSIGN_OR_RETURN(step.attribute, ExpectIdent());
      if (Accept(TokenKind::kLBracket)) {
        LYRIC_ASSIGN_OR_RETURN(auto sel, ParseSelector());
        step.selector = std::move(sel);
        LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
      }
      out.steps.push_back(std::move(step));
    }
    return out;
  }

  // --- arithmetic -----------------------------------------------------------

  Result<std::unique_ptr<ArithExpr>> ParseArith() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseTerm());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      bool add = At(TokenKind::kPlus);
      ++pos_;
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseTerm());
      auto node = std::make_unique<ArithExpr>();
      node->kind = add ? ArithExpr::Kind::kAdd : ArithExpr::Kind::kSub;
      node->offset = lhs->offset;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<ArithExpr>> ParseTerm() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseFactor());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
      bool mul = At(TokenKind::kStar);
      ++pos_;
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseFactor());
      auto node = std::make_unique<ArithExpr>();
      node->kind = mul ? ArithExpr::Kind::kMul : ArithExpr::Kind::kDiv;
      node->offset = lhs->offset;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<ArithExpr>> ParseFactor() {
    size_t offset = Cur().offset;
    if (Accept(TokenKind::kMinus)) {
      LYRIC_ASSIGN_OR_RETURN(auto operand, ParseFactor());
      auto node = std::make_unique<ArithExpr>();
      node->kind = ArithExpr::Kind::kNeg;
      node->offset = offset;
      node->lhs = std::move(operand);
      return node;
    }
    if (At(TokenKind::kNumber)) {
      auto node = std::make_unique<ArithExpr>();
      node->kind = ArithExpr::Kind::kConst;
      node->constant = Cur().number;
      node->offset = offset;
      ++pos_;
      return node;
    }
    if (Accept(TokenKind::kLParen)) {
      LYRIC_ASSIGN_OR_RETURN(auto inner, ParseArith());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    if (At(TokenKind::kIdent)) {
      LYRIC_ASSIGN_OR_RETURN(PathExpr path, ParsePath());
      auto node = std::make_unique<ArithExpr>();
      node->offset = offset;
      if (path.steps.empty()) {
        node->kind = ArithExpr::Kind::kName;
        node->name = path.head.name;
      } else {
        node->kind = ArithExpr::Kind::kPath;
        node->path = std::make_unique<PathExpr>(std::move(path));
      }
      return node;
    }
    return Err("expected an arithmetic operand");
  }

  // --- formulas -------------------------------------------------------------

  bool AtRelop() const {
    switch (Cur().kind) {
      case TokenKind::kEq:
      case TokenKind::kNeq:
      case TokenKind::kLe:
      case TokenKind::kLt:
      case TokenKind::kGe:
      case TokenKind::kGt:
        return true;
      default:
        return false;
    }
  }
  std::string TakeRelop() {
    std::string out = TokenKindToString(Cur().kind);
    ++pos_;
    return out;
  }

  Result<std::unique_ptr<Formula>> ParseFormulaOr() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseFormulaAnd());
    if (!At(TokenKind::kOr)) return lhs;
    auto node = std::make_unique<Formula>();
    node->kind = Formula::Kind::kOr;
    node->offset = lhs->offset;
    node->children.push_back(std::move(lhs));
    while (Accept(TokenKind::kOr)) {
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseFormulaAnd());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Formula>> ParseFormulaAnd() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseFormulaNot());
    if (!At(TokenKind::kAnd)) return lhs;
    auto node = std::make_unique<Formula>();
    node->kind = Formula::Kind::kAnd;
    node->offset = lhs->offset;
    node->children.push_back(std::move(lhs));
    while (Accept(TokenKind::kAnd)) {
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseFormulaNot());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<std::unique_ptr<Formula>> ParseFormulaNot() {
    size_t offset = Cur().offset;
    if (Accept(TokenKind::kNot)) {
      LYRIC_ASSIGN_OR_RETURN(auto operand, ParseFormulaNot());
      auto node = std::make_unique<Formula>();
      node->kind = Formula::Kind::kNot;
      node->offset = offset;
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParseFormulaPrimary();
  }

  // projection := '(' '(' vars ')' '|' formula ')'
  Result<std::unique_ptr<Formula>> TryParseProjection() {
    size_t save = pos_;
    size_t offset = Cur().offset;
    auto fail = [&]() -> Status {
      pos_ = save;
      return Status::ParseError("not a projection");
    };
    if (!Accept(TokenKind::kLParen)) return fail();
    if (!Accept(TokenKind::kLParen)) return fail();
    std::vector<std::string> vars;
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        if (!At(TokenKind::kIdent)) return fail();
        vars.push_back(Cur().text);
        ++pos_;
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    if (!Accept(TokenKind::kRParen)) return fail();
    if (!Accept(TokenKind::kBar)) return fail();
    LYRIC_ASSIGN_OR_RETURN(auto body, ParseFormulaOr());
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    auto node = std::make_unique<Formula>();
    node->kind = Formula::Kind::kProject;
    node->offset = offset;
    node->proj_vars = std::move(vars);
    node->children.push_back(std::move(body));
    return node;
  }

  Result<std::unique_ptr<Formula>> ParseFormulaPrimary() {
    size_t offset = Cur().offset;
    if (Accept(TokenKind::kExists)) {
      // exists v1, v2 . (phi)
      auto node = std::make_unique<Formula>();
      node->kind = Formula::Kind::kExists;
      node->offset = offset;
      for (;;) {
        LYRIC_ASSIGN_OR_RETURN(std::string var, ExpectIdent());
        node->proj_vars.push_back(std::move(var));
        if (!Accept(TokenKind::kComma)) break;
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kDot));
      LYRIC_ASSIGN_OR_RETURN(auto body, ParseFormulaPrimary());
      node->children.push_back(std::move(body));
      return node;
    }
    if (Accept(TokenKind::kTrue)) {
      auto node = std::make_unique<Formula>();
      node->kind = Formula::Kind::kTrue;
      node->offset = offset;
      return node;
    }
    if (Accept(TokenKind::kFalse)) {
      auto node = std::make_unique<Formula>();
      node->kind = Formula::Kind::kFalse;
      node->offset = offset;
      return node;
    }
    if (At(TokenKind::kLParen)) {
      // Try, in order: projection, atom led by a parenthesized arithmetic
      // expression, parenthesized formula.
      {
        auto proj = TryParseProjection();
        if (proj.ok()) return std::move(proj).value();
      }
      {
        size_t save = pos_;
        auto atom = TryParseAtomChain();
        if (atom.ok()) return std::move(atom).value();
        pos_ = save;
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      LYRIC_ASSIGN_OR_RETURN(auto inner, ParseFormulaOr());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParseAtomOrPred();
  }

  // Atoms with optional chaining: a <= b <= c becomes (a<=b) and (b<=c).
  // Fails (without consuming definitively — caller restores pos) when no
  // relop follows the first expression.
  Result<std::unique_ptr<Formula>> TryParseAtomChain() {
    LYRIC_ASSIGN_OR_RETURN(auto first, ParseArith());
    if (!AtRelop()) return Err("expected a relational operator");
    return FinishAtomChain(std::move(first));
  }

  Result<std::unique_ptr<Formula>> FinishAtomChain(
      std::unique_ptr<ArithExpr> first) {
    std::vector<std::unique_ptr<Formula>> atoms;
    std::unique_ptr<ArithExpr> prev = std::move(first);
    while (AtRelop()) {
      std::string op = TakeRelop();
      LYRIC_ASSIGN_OR_RETURN(auto next, ParseArith());
      auto atom = std::make_unique<Formula>();
      atom->kind = Formula::Kind::kAtom;
      atom->relop = op;
      atom->offset = prev->offset;
      atom->atom_lhs = std::move(prev);
      // Deep-copy `next` for the chain continuation.
      atom->atom_rhs = CloneArith(*next);
      prev = std::move(next);
      atoms.push_back(std::move(atom));
    }
    if (atoms.size() == 1) return std::move(atoms[0]);
    auto node = std::make_unique<Formula>();
    node->kind = Formula::Kind::kAnd;
    node->offset = atoms[0]->offset;
    node->children = std::move(atoms);
    return node;
  }

  static std::unique_ptr<ArithExpr> CloneArith(const ArithExpr& e) {
    auto out = std::make_unique<ArithExpr>();
    out->kind = e.kind;
    out->constant = e.constant;
    out->name = e.name;
    out->offset = e.offset;
    if (e.path) out->path = std::make_unique<PathExpr>(*e.path);
    if (e.lhs) out->lhs = CloneArith(*e.lhs);
    if (e.rhs) out->rhs = CloneArith(*e.rhs);
    return out;
  }

  Result<std::unique_ptr<Formula>> ParseAtomOrPred() {
    LYRIC_ASSIGN_OR_RETURN(auto first, ParseArith());
    if (AtRelop()) return FinishAtomChain(std::move(first));
    // A bare name/path is a CST predicate use, optionally with explicit
    // dimension variables.
    if (first->kind != ArithExpr::Kind::kName &&
        first->kind != ArithExpr::Kind::kPath) {
      return Err("expected a relational operator or a CST predicate");
    }
    auto node = std::make_unique<Formula>();
    node->kind = Formula::Kind::kPred;
    node->offset = first->offset;
    if (first->kind == ArithExpr::Kind::kName) {
      node->pred = std::make_unique<PathExpr>();
      node->pred->head = NameOrLiteral::Name(first->name);
      node->pred->head.offset = first->offset;
      node->pred->offset = first->offset;
    } else {
      node->pred = std::move(first->path);
    }
    if (Accept(TokenKind::kLParen)) {
      std::vector<std::string> args;
      if (!At(TokenKind::kRParen)) {
        for (;;) {
          LYRIC_ASSIGN_OR_RETURN(std::string arg, ExpectIdent());
          args.push_back(std::move(arg));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      node->pred_args = std::move(args);
    }
    return node;
  }

  // A formula operand for |=: projection, pred use, or '(' formula ')'.
  Result<std::unique_ptr<Formula>> ParseFormulaOperand() {
    if (At(TokenKind::kLParen)) {
      auto proj = TryParseProjection();
      if (proj.ok()) return std::move(proj).value();
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      LYRIC_ASSIGN_OR_RETURN(auto inner, ParseFormulaOr());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParseAtomOrPred();
  }

  // --- select items ----------------------------------------------------------

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    item.offset = Cur().offset;
    // Optional 'name ='.
    if (At(TokenKind::kIdent) &&
        tokens_[pos_ + 1].kind == TokenKind::kEq) {
      item.name = Cur().text;
      pos_ += 2;
    }
    if (At(TokenKind::kMax) || At(TokenKind::kMin) ||
        At(TokenKind::kMaxPoint) || At(TokenKind::kMinPoint)) {
      switch (Cur().kind) {
        case TokenKind::kMax:
          item.opt = SelectItem::OptKind::kMax;
          break;
        case TokenKind::kMin:
          item.opt = SelectItem::OptKind::kMin;
          break;
        case TokenKind::kMaxPoint:
          item.opt = SelectItem::OptKind::kMaxPoint;
          break;
        default:
          item.opt = SelectItem::OptKind::kMinPoint;
          break;
      }
      ++pos_;
      item.kind = SelectItem::Kind::kOptimize;
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      LYRIC_ASSIGN_OR_RETURN(item.objective, ParseArith());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSubject));
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kTo));
      LYRIC_ASSIGN_OR_RETURN(item.formula, ParseFormulaOr());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return item;
    }
    if (At(TokenKind::kLParen)) {
      auto proj = TryParseProjection();
      if (proj.ok()) {
        item.kind = SelectItem::Kind::kFormulaObject;
        item.formula = std::move(proj).value();
        return item;
      }
      return Err("expected a projection formula ((vars) | ...) in SELECT");
    }
    item.kind = SelectItem::Kind::kPath;
    LYRIC_ASSIGN_OR_RETURN(item.path, ParsePath());
    return item;
  }

  // --- WHERE -----------------------------------------------------------------

  Result<std::unique_ptr<WhereExpr>> ParseWhereOr() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseWhereAnd());
    if (!At(TokenKind::kOr)) return lhs;
    auto node = std::make_unique<WhereExpr>();
    node->kind = WhereExpr::Kind::kOr;
    node->offset = lhs->offset;
    node->children.push_back(std::move(lhs));
    while (Accept(TokenKind::kOr)) {
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseWhereAnd());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<std::unique_ptr<WhereExpr>> ParseWhereAnd() {
    LYRIC_ASSIGN_OR_RETURN(auto lhs, ParseWhereNot());
    if (!At(TokenKind::kAnd)) return lhs;
    auto node = std::make_unique<WhereExpr>();
    node->kind = WhereExpr::Kind::kAnd;
    node->offset = lhs->offset;
    node->children.push_back(std::move(lhs));
    while (Accept(TokenKind::kAnd)) {
      LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseWhereNot());
      node->children.push_back(std::move(rhs));
    }
    return node;
  }

  Result<std::unique_ptr<WhereExpr>> ParseWhereNot() {
    size_t offset = Cur().offset;
    if (Accept(TokenKind::kNot)) {
      LYRIC_ASSIGN_OR_RETURN(auto operand, ParseWhereNot());
      auto node = std::make_unique<WhereExpr>();
      node->kind = WhereExpr::Kind::kNot;
      node->offset = offset;
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParseWherePrimary();
  }

  Result<std::unique_ptr<WhereExpr>> ParseWherePrimary() {
    size_t offset = Cur().offset;
    // SAT(phi).
    if (Accept(TokenKind::kSat)) {
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      LYRIC_ASSIGN_OR_RETURN(auto f, ParseFormulaOr());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      auto node = std::make_unique<WhereExpr>();
      node->kind = WhereExpr::Kind::kFormulaSat;
      node->offset = offset;
      node->formula = std::move(f);
      return node;
    }
    // Entailment: formula |= formula (backtracks when no |= follows).
    {
      size_t save = pos_;
      auto lhs = ParseFormulaOperand();
      if (lhs.ok() && Accept(TokenKind::kEntails)) {
        LYRIC_ASSIGN_OR_RETURN(auto rhs, ParseFormulaOperand());
        auto node = std::make_unique<WhereExpr>();
        node->kind = WhereExpr::Kind::kEntails;
        node->offset = offset;
        node->ent_lhs = std::move(lhs).value();
        node->ent_rhs = std::move(rhs);
        return node;
      }
      pos_ = save;
    }
    // Parenthesized condition.
    if (At(TokenKind::kLParen)) {
      size_t save = pos_;
      ++pos_;
      auto inner = ParseWhereOr();
      if (inner.ok() && Accept(TokenKind::kRParen)) {
        return std::move(inner).value();
      }
      pos_ = save;
      return Err("could not parse parenthesized condition");
    }
    // Comparison or path predicate.
    LYRIC_ASSIGN_OR_RETURN(WhereExpr::Operand lhs, ParseOperand());
    if (AtRelop() || At(TokenKind::kContains)) {
      auto node = std::make_unique<WhereExpr>();
      node->kind = WhereExpr::Kind::kCompare;
      node->offset = offset;
      node->cmp_op = At(TokenKind::kContains) ? "contains" : TakeRelop();
      if (node->cmp_op == "contains") ++pos_;
      node->cmp_lhs = std::move(lhs);
      LYRIC_ASSIGN_OR_RETURN(node->cmp_rhs, ParseOperand());
      return node;
    }
    if (lhs.kind != WhereExpr::Operand::Kind::kPath) {
      return Err("a bare literal is not a condition");
    }
    auto node = std::make_unique<WhereExpr>();
    node->kind = WhereExpr::Kind::kPathPred;
    node->offset = offset;
    node->path = std::move(lhs.path);
    return node;
  }

  Result<WhereExpr::Operand> ParseOperand() {
    WhereExpr::Operand out;
    if (At(TokenKind::kString) || At(TokenKind::kNumber) ||
        At(TokenKind::kTrue) || At(TokenKind::kFalse)) {
      LYRIC_ASSIGN_OR_RETURN(auto sel, ParseSelector());
      out.kind = WhereExpr::Operand::Kind::kLiteral;
      out.literal = sel.literal;
      return out;
    }
    out.kind = WhereExpr::Operand::Kind::kPath;
    LYRIC_ASSIGN_OR_RETURN(out.path, ParsePath());
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t error_offset_ = 0;
  size_t error_length_ = 1;
};

}  // namespace

Result<ast::Query> ParseQuery(const std::string& text) {
  LYRIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ast::Query> ParseQuery(const std::string& text, Diagnostic* diag) {
  size_t lex_error_offset = 0;
  Result<std::vector<Token>> tokens = Lex(text, &lex_error_offset);
  if (!tokens.ok()) {
    if (diag != nullptr) {
      *diag = MakeDiag(DiagCode::kLexError, {lex_error_offset, 1},
                       tokens.status().message());
    }
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  Result<ast::Query> query = parser.ParseQuery();
  if (!query.ok() && diag != nullptr) {
    *diag = MakeDiag(DiagCode::kSyntaxError,
                     {parser.error_offset(), parser.error_length()},
                     query.status().message());
  }
  return query;
}

Result<ast::Formula> ParseFormula(const std::string& text) {
  LYRIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneFormula();
}

Result<ast::Formula> ParseFormulaPrefix(const std::vector<Token>& tokens,
                                        size_t* pos) {
  std::vector<Token> rest(tokens.begin() + static_cast<ptrdiff_t>(*pos),
                          tokens.end());
  Parser parser(std::move(rest));
  size_t consumed = 0;
  LYRIC_ASSIGN_OR_RETURN(ast::Formula f,
                         parser.ParsePrefixFormula(&consumed));
  *pos += consumed;
  return f;
}

}  // namespace lyric
