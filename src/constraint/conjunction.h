// Conjunctions of atomic linear constraints.
//
// A Conjunction is the engine representation of the paper's *conjunctive
// constraint* family (§3.1): a finite conjunction of linear arithmetic
// atoms. Geometrically it is a convex polyhedron possibly punctured by
// disequality hyperplanes. Restricted projection (the paper's polynomial
// quantifier-elimination steps) lives in fourier_motzkin.h; satisfiability
// and optimization live in simplex.h.

#ifndef LYRIC_CONSTRAINT_CONJUNCTION_H_
#define LYRIC_CONSTRAINT_CONJUNCTION_H_

#include <ostream>
#include <string>
#include <vector>

#include "constraint/linear_constraint.h"

namespace lyric {

/// A conjunction of atomic linear constraints.
class Conjunction {
 public:
  /// Constructs the empty conjunction (logically TRUE).
  Conjunction() = default;
  explicit Conjunction(std::vector<LinearConstraint> atoms)
      : atoms_(std::move(atoms)) {}

  /// The canonical FALSE conjunction (contains the single atom 1 <= 0).
  static Conjunction False();

  const std::vector<LinearConstraint>& atoms() const { return atoms_; }
  bool IsTrue() const { return atoms_.empty(); }
  size_t size() const { return atoms_.size(); }

  /// Appends an atom; drops it if it is a constant TRUE, and collapses the
  /// whole conjunction to False() if it is a constant FALSE.
  void Add(const LinearConstraint& atom);
  /// Conjoins all atoms of `o`.
  void AddAll(const Conjunction& o);

  /// True if some atom is the constant-false atom (syntactic check only;
  /// use Simplex for semantic infeasibility).
  bool HasConstantFalse() const;

  /// True if the conjunction contains a disequality atom.
  bool HasDisequality() const;

  /// The conjunction of the two.
  Conjunction Conjoin(const Conjunction& o) const;

  VarSet FreeVars() const;
  void CollectVars(VarSet* out) const;

  Conjunction Substitute(VarId var, const LinearExpr& replacement) const;
  Conjunction Rename(const std::map<VarId, VarId>& renaming) const;

  /// Truth under a total assignment.
  Result<bool> Eval(const Assignment& assignment) const;

  /// Sorts atoms and removes syntactic duplicates and constant-true atoms
  /// (the cheap canonical-form steps of §3.1). Collapses to False() when a
  /// constant-false atom is present.
  void SortAndDedupe();

  bool operator==(const Conjunction& o) const { return atoms_ == o.atoms_; }
  bool operator!=(const Conjunction& o) const { return !(*this == o); }
  /// Total order (assumes both sides are SortAndDedupe'd for canonical use).
  int Compare(const Conjunction& o) const;

  /// "x + y <= 3 and x >= 0"; "true" for the empty conjunction.
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::vector<LinearConstraint> atoms_;
};

inline std::ostream& operator<<(std::ostream& os, const Conjunction& c) {
  return os << c.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_CONJUNCTION_H_
