#include "constraint/entailment.h"

#include "constraint/simplex.h"
#include "constraint/solver_cache.h"
#include "exec/governor.h"
#include "obs/metrics.h"

namespace lyric {

namespace {

// Clause: a disjunction of single atoms (negation of one rhs disjunct).
using Clause = std::vector<LinearConstraint>;

// Is `base` together with one literal from each of clauses[idx..]
// satisfiable? DPLL-style with feasibility pruning.
Result<bool> SatWithClauses(const Conjunction& base,
                            const std::vector<Clause>& clauses, size_t idx) {
  LYRIC_OBS_COUNT("entailment.branches");
  LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(base));
  if (!sat) return false;
  if (idx == clauses.size()) return true;
  for (const LinearConstraint& literal : clauses[idx]) {
    Conjunction next = base;
    next.Add(literal);
    LYRIC_ASSIGN_OR_RETURN(bool branch_sat,
                           SatWithClauses(next, clauses, idx + 1));
    if (branch_sat) return true;
  }
  return false;
}

}  // namespace

Result<bool> Entailment::ConjunctionEntails(const Conjunction& lhs,
                                            const Dnf& rhs) {
  LYRIC_OBS_COUNT("entailment.checks");
  static obs::Histogram& check_hist =
      obs::Registry::Global().GetHistogram("entailment.check");
  obs::ScopedHistogramTimer scoped_timer(check_hist);
  // The DPLL recursion below checks the token through every
  // Simplex::IsSatisfiable call; a trip propagates out as an error before
  // the verdict reaches StoreEntails.
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("entailment.entails"));
  SolverCache& cache = SolverCache::Global();
  // Fail fast on a recorded budget trip for this entailment question.
  if (std::optional<Status> doomed = cache.LookupEntailsTombstone(lhs, rhs)) {
    return *doomed;
  }
  if (std::optional<bool> cached = cache.LookupEntails(lhs, rhs)) {
    return *cached;
  }
  // lhs |= D1 or ... or Dk  iff  lhs and not(D1) and ... and not(Dk) unsat.
  std::vector<Clause> clauses;
  clauses.reserve(rhs.size());
  bool holds;
  bool trivially_true = false;
  for (const Conjunction& d : rhs.disjuncts()) {
    if (d.IsTrue()) {
      trivially_true = true;  // rhs contains TRUE.
      break;
    }
    Clause clause;
    for (const LinearConstraint& atom : d.atoms()) {
      for (const LinearConstraint& neg : atom.Negate()) {
        clause.push_back(neg);
      }
    }
    clauses.push_back(std::move(clause));
  }
  if (trivially_true) {
    holds = true;
  } else {
    Result<bool> counterexample = SatWithClauses(lhs, clauses, 0);
    if (!counterexample.ok()) {
      if (counterexample.status().IsResourceExhausted()) {
        cache.StoreEntailsTombstone(lhs, rhs);
      }
      return counterexample.status();
    }
    holds = !*counterexample;
  }
  cache.StoreEntails(lhs, rhs, holds);
  return holds;
}

Result<bool> Entailment::Entails(const Dnf& lhs, const Dnf& rhs) {
  for (const Conjunction& c : lhs.disjuncts()) {
    LYRIC_ASSIGN_OR_RETURN(bool ok, ConjunctionEntails(c, rhs));
    if (!ok) return false;
  }
  return true;
}

Result<bool> Entailment::Equivalent(const Dnf& a, const Dnf& b) {
  LYRIC_ASSIGN_OR_RETURN(bool ab, Entails(a, b));
  if (!ab) return false;
  return Entails(b, a);
}

Result<bool> Entailment::Disjoint(const Dnf& a, const Dnf& b) {
  LYRIC_ASSIGN_OR_RETURN(bool overlap, Overlaps(a, b));
  return !overlap;
}

}  // namespace lyric
