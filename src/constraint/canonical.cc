#include "constraint/canonical.h"

#include <algorithm>

#include "constraint/simplex.h"
#include "constraint/solver_cache.h"
#include "exec/governor.h"
#include "obs/metrics.h"

namespace lyric {

const char* CanonicalLevelToString(CanonicalLevel level) {
  switch (level) {
    case CanonicalLevel::kSyntactic:
      return "syntactic";
    case CanonicalLevel::kCheap:
      return "cheap";
    case CanonicalLevel::kRedundancy:
      return "redundancy";
  }
  return "?";
}

Conjunction Canonical::SolveEqualities(const Conjunction& c) {
  std::vector<LinearConstraint> atoms = c.atoms();
  // Each equality pivots at most once, on a variable no earlier equality
  // pivoted on — classic forward elimination into echelon form.
  VarSet used_pivots;
  std::set<size_t> pivoted;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (!atoms[i].IsEquality() || pivoted.count(i)) continue;
      // Pick the lowest-id variable not yet used as a pivot.
      VarId pivot = 0;
      Rational coeff;
      bool found = false;
      for (const auto& [v, a] : atoms[i].lhs().terms()) {
        if (!used_pivots.count(v)) {
          pivot = v;
          coeff = a;
          found = true;
          break;
        }
      }
      if (!found) continue;
      used_pivots.insert(pivot);
      pivoted.insert(i);
      // pivot = -(rest)/coeff.
      LinearExpr rest = atoms[i].lhs();
      rest.AddTerm(pivot, -coeff);
      LinearExpr replacement = (-rest).Scale(coeff.Inverse());
      for (size_t j = 0; j < atoms.size(); ++j) {
        if (j == i) continue;
        atoms[j] = atoms[j].Substitute(pivot, replacement);
      }
      changed = true;
    }
  }
  Conjunction out;
  for (const LinearConstraint& atom : atoms) out.Add(atom);
  return out;
}

namespace {

Result<Conjunction> SimplifyConjunctionUncached(const Conjunction& c,
                                                CanonicalLevel level) {
  Conjunction cur = c;
  if (level >= CanonicalLevel::kCheap) {
    cur = Canonical::SolveEqualities(cur);
  }
  cur.SortAndDedupe();
  if (cur.HasConstantFalse()) return Conjunction::False();
  if (level >= CanonicalLevel::kCheap) {
    LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(cur));
    if (!sat) return Conjunction::False();
  }
  if (level >= CanonicalLevel::kRedundancy) {
    // Greedy removal: an atom is dropped when the remaining atoms entail
    // it. Each test is one or two simplex calls.
    std::vector<LinearConstraint> kept = cur.atoms();
    for (size_t i = 0; i < kept.size();) {
      Conjunction rest;
      for (size_t j = 0; j < kept.size(); ++j) {
        if (j != i) rest.Add(kept[j]);
      }
      LYRIC_OBS_COUNT("canonical.redundancy_checks");
      bool redundant = false;
      const LinearConstraint& atom = kept[i];
      if (atom.IsEquality()) {
        LYRIC_ASSIGN_OR_RETURN(redundant,
                               Simplex::EntailsZero(rest, atom.lhs()));
      } else {
        // rest entails atom iff rest and not(atom) is unsatisfiable.
        bool any_sat = false;
        for (const LinearConstraint& neg : atom.Negate()) {
          Conjunction probe = rest;
          probe.Add(neg);
          LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(probe));
          if (sat) {
            any_sat = true;
            break;
          }
        }
        redundant = !any_sat;
      }
      if (redundant) {
        LYRIC_OBS_COUNT("canonical.atoms_removed");
        kept.erase(kept.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    cur = Conjunction(std::move(kept));
    cur.SortAndDedupe();
  }
  return cur;
}

}  // namespace

Result<Conjunction> Canonical::Simplify(const Conjunction& c,
                                        CanonicalLevel level) {
  LYRIC_OBS_COUNT("canonical.simplify_calls");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("canonical.simplify"));
  static obs::Histogram& simplify_hist =
      obs::Registry::Global().GetHistogram("canonical.simplify");
  obs::ScopedHistogramTimer scoped_timer(simplify_hist);
  // Memoize the LP-bearing levels only; kSyntactic simplification is
  // cheaper than the lookup itself.
  if (level < CanonicalLevel::kCheap) {
    return SimplifyConjunctionUncached(c, level);
  }
  SolverCache& cache = SolverCache::Global();
  // Fail fast on a recorded budget trip for this key before paying for
  // the LP-bearing simplification again.
  if (std::optional<Status> doomed = cache.LookupCanonicalTombstone(c, level)) {
    return *doomed;
  }
  if (std::optional<Conjunction> cached = cache.LookupCanonical(c, level)) {
    return *cached;
  }
  Result<Conjunction> out = SimplifyConjunctionUncached(c, level);
  if (!out.ok()) {
    if (out.status().IsResourceExhausted()) {
      cache.StoreCanonicalTombstone(c, level);
    }
    return out.status();
  }
  cache.StoreCanonical(c, level, *out);
  return std::move(out).value();
}

Result<Dnf> Canonical::Simplify(const Dnf& d, CanonicalLevel level) {
  std::vector<Conjunction> out;
  for (const Conjunction& c : d.disjuncts()) {
    LYRIC_ASSIGN_OR_RETURN(Conjunction s, Simplify(c, level));
    if (level >= CanonicalLevel::kCheap && s.HasConstantFalse()) {
      continue;  // Deletion of inconsistent disjuncts.
    }
    out.push_back(std::move(s));
  }
  // Sort + syntactic duplicate deletion.
  std::sort(out.begin(), out.end(),
            [](const Conjunction& a, const Conjunction& b) {
              return a.Compare(b) < 0;
            });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return Dnf(std::move(out));
}

}  // namespace lyric
