#include "constraint/cst_object.h"

#include <algorithm>

#include "util/string_util.h"

namespace lyric {

namespace {

Status CheckInterface(const std::vector<VarId>& interface_vars) {
  VarSet seen;
  for (VarId v : interface_vars) {
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("repeated interface variable '" +
                                     Variable::Name(v) + "'");
    }
  }
  return Status::OK();
}

}  // namespace

CstObject::CstObject()
    : body_(DisjunctiveExistential::True()),
      family_(ConstraintFamily::kConjunctive) {}

Status CstObject::CheckBodyVars() const {
  VarSet allowed(interface_.begin(), interface_.end());
  for (VarId v : body_.FreeVars()) {
    if (!allowed.count(v)) {
      return Status::InvalidArgument(
          "constraint body mentions variable '" + Variable::Name(v) +
          "' outside the interface " +
          VarSetToString(VarSet(interface_.begin(), interface_.end())));
    }
  }
  return Status::OK();
}

ConstraintFamily CstObject::InferFamily(const DisjunctiveExistential& body) {
  bool has_exists = false;
  for (const ExistentialConjunction& ec : body.disjuncts()) {
    if (!ec.bound().empty()) has_exists = true;
  }
  bool has_disj = body.size() > 1;
  if (has_exists && has_disj) {
    return ConstraintFamily::kDisjunctiveExistential;
  }
  if (has_exists) return ConstraintFamily::kExistentialConjunctive;
  if (has_disj) return ConstraintFamily::kDisjunctive;
  return ConstraintFamily::kConjunctive;
}

Result<CstObject> CstObject::FromConjunction(
    std::vector<VarId> interface_vars, Conjunction body) {
  return Make(std::move(interface_vars),
              DisjunctiveExistential::FromConjunction(std::move(body)));
}

Result<CstObject> CstObject::FromDnf(std::vector<VarId> interface_vars,
                                     Dnf body) {
  return Make(std::move(interface_vars),
              DisjunctiveExistential::FromDnf(body));
}

Result<CstObject> CstObject::Make(std::vector<VarId> interface_vars,
                                  DisjunctiveExistential body) {
  LYRIC_RETURN_NOT_OK(CheckInterface(interface_vars));
  CstObject out;
  out.interface_ = std::move(interface_vars);
  out.body_ = std::move(body);
  out.family_ = InferFamily(out.body_);
  LYRIC_RETURN_NOT_OK(out.CheckBodyVars());
  return out;
}

Result<CstObject> CstObject::RenameTo(
    const std::vector<VarId>& new_interface) const {
  if (new_interface.size() != interface_.size()) {
    return Status::InvalidArgument(
        "interface arity mismatch: have " +
        std::to_string(interface_.size()) + " dimensions, renaming to " +
        std::to_string(new_interface.size()));
  }
  LYRIC_RETURN_NOT_OK(CheckInterface(new_interface));
  std::map<VarId, VarId> renaming;
  for (size_t i = 0; i < interface_.size(); ++i) {
    if (interface_[i] != new_interface[i]) {
      renaming[interface_[i]] = new_interface[i];
    }
  }
  CstObject out;
  out.interface_ = new_interface;
  out.body_ = body_.RenameFree(renaming);
  out.family_ = family_;
  return out;
}

Result<CstObject> CstObject::Conjoin(const CstObject& o) const {
  CstObject out;
  out.interface_ = interface_;
  VarSet have(interface_.begin(), interface_.end());
  for (VarId v : o.interface_) {
    if (have.insert(v).second) out.interface_.push_back(v);
  }
  out.body_ = body_.And(o.body_);
  out.family_ = FamilyJoin(family_, o.family_);
  // Conjunction of two disjunctive objects multiplies disjuncts but stays
  // disjunctive; of mixed existential forms joins at the top. Re-infer to
  // keep the tag structural when the product collapsed.
  out.family_ = FamilyJoin(out.family_, InferFamily(out.body_));
  return out;
}

Result<CstObject> CstObject::Disjoin(const CstObject& o) const {
  CstObject out;
  out.interface_ = interface_;
  VarSet have(interface_.begin(), interface_.end());
  for (VarId v : o.interface_) {
    if (have.insert(v).second) out.interface_.push_back(v);
  }
  out.body_ = body_.Or(o.body_);
  ConstraintFamily disj =
      FamilyHasExistentials(FamilyJoin(family_, o.family_))
          ? ConstraintFamily::kDisjunctiveExistential
          : ConstraintFamily::kDisjunctive;
  out.family_ = FamilyJoin(disj, InferFamily(out.body_));
  return out;
}

Result<CstObject> CstObject::Negate() const {
  if (family_ != ConstraintFamily::kConjunctive) {
    return Status::InvalidArgument(
        "negation is only defined for conjunctive CST objects (got " +
        std::string(ConstraintFamilyToString(family_)) + ")");
  }
  Dnf negated;
  if (body_.IsFalse()) {
    negated = Dnf::True();
  } else {
    negated = Dnf::NegateConjunction(body_.disjuncts()[0].body());
  }
  return FromDnf(interface_, std::move(negated));
}

Result<CstObject> CstObject::Project(
    const std::vector<VarId>& new_interface) const {
  LYRIC_RETURN_NOT_OK(CheckInterface(new_interface));
  VarSet keep(new_interface.begin(), new_interface.end());
  // Variables being dropped.
  std::vector<VarId> dropped;
  for (VarId v : interface_) {
    if (!keep.count(v)) dropped.push_back(v);
  }
  // Kept *old* dimensions (for the restricted-projection test).
  size_t kept_old = interface_.size() - dropped.size();

  CstObject out;
  out.interface_ = new_interface;
  if (!FamilyHasExistentials(family_) &&
      (dropped.size() <= 1 || kept_old <= 1)) {
    // Restricted projection: eager, stays in the family (§3.1).
    LYRIC_ASSIGN_OR_RETURN(Dnf dnf, body_.ToDnf());  // No quantifiers here.
    if (dropped.size() == 1 && kept_old > 1) {
      LYRIC_ASSIGN_OR_RETURN(dnf, dnf.EliminateVariable(dropped[0]));
    } else if (kept_old <= 1) {
      std::optional<VarId> keep_var;
      for (VarId v : interface_) {
        if (keep.count(v)) keep_var = v;
      }
      LYRIC_ASSIGN_OR_RETURN(dnf, dnf.ProjectOntoAtMostOne(keep_var));
    }
    out.body_ = DisjunctiveExistential::FromDnf(dnf);
    out.family_ = family_;
    out.family_ = FamilyJoin(out.family_, InferFamily(out.body_));
    return out;
  }
  // Unrestricted (or already existential): absorb into the quantifier.
  out.body_ = body_.Project(keep);
  out.family_ = FamilyHasDisjunction(family_) || out.body_.size() > 1
                    ? ConstraintFamily::kDisjunctiveExistential
                    : ConstraintFamily::kExistentialConjunctive;
  return out;
}

Result<CstObject> CstObject::ProjectEager(
    const std::vector<VarId>& new_interface) const {
  LYRIC_RETURN_NOT_OK(CheckInterface(new_interface));
  VarSet keep(new_interface.begin(), new_interface.end());
  LYRIC_ASSIGN_OR_RETURN(Dnf dnf, body_.ToDnf());
  LYRIC_ASSIGN_OR_RETURN(Dnf projected, dnf.ProjectOnto(keep));
  return FromDnf(new_interface, std::move(projected));
}

Result<bool> CstObject::Contains(const std::vector<Rational>& point) const {
  if (point.size() != interface_.size()) {
    return Status::InvalidArgument("point dimension " +
                                   std::to_string(point.size()) +
                                   " != object dimension " +
                                   std::to_string(interface_.size()));
  }
  Assignment a;
  for (size_t i = 0; i < point.size(); ++i) a[interface_[i]] = point[i];
  return body_.EvalFree(a);
}

Result<bool> CstObject::Entails(const CstObject& o) const {
  if (o.Dimension() != Dimension()) {
    return Status::InvalidArgument(
        "entailment between CST objects of different dimension (" +
        std::to_string(Dimension()) + " vs " + std::to_string(o.Dimension()) +
        ")");
  }
  LYRIC_ASSIGN_OR_RETURN(CstObject aligned, o.RenameTo(interface_));
  return body_.Entails(aligned.body_);
}

Result<bool> CstObject::EquivalentTo(const CstObject& o) const {
  LYRIC_ASSIGN_OR_RETURN(bool ab, Entails(o));
  if (!ab) return false;
  return o.Entails(*this);
}

Result<LpSolution> CstObject::Maximize(const LinearExpr& objective) const {
  // The supremum over a union is the max over disjuncts; a bound variable
  // is just an extra dimension of the disjunct's polyhedron.
  LpSolution best;
  best.status = LpStatus::kInfeasible;
  for (const ExistentialConjunction& ec : body_.disjuncts()) {
    const ExistentialConjunction fresh = ec.FreshenBound();
    LYRIC_ASSIGN_OR_RETURN(LpSolution sol,
                           Simplex::Maximize(objective, fresh.body()));
    if (sol.status == LpStatus::kInfeasible) continue;
    if (sol.status == LpStatus::kUnbounded) return sol;
    if (best.status != LpStatus::kOptimal || sol.value > best.value ||
        (sol.value == best.value && sol.attained && !best.attained)) {
      best = sol;
    }
  }
  if (best.status == LpStatus::kOptimal) {
    // Restrict the witness to interface variables.
    Assignment pt;
    for (VarId v : interface_) {
      auto it = best.point.find(v);
      pt[v] = it == best.point.end() ? Rational(0) : it->second;
    }
    best.point = std::move(pt);
  }
  return best;
}

Result<LpSolution> CstObject::Minimize(const LinearExpr& objective) const {
  LYRIC_ASSIGN_OR_RETURN(LpSolution neg, Maximize(-objective));
  neg.value = -neg.value;
  return neg;
}

Result<std::vector<CstObject::Interval>> CstObject::BoundingBox() const {
  LYRIC_ASSIGN_OR_RETURN(bool sat, Satisfiable());
  if (!sat) {
    return Status::InvalidArgument("BoundingBox of an empty CST object");
  }
  std::vector<Interval> out;
  out.reserve(interface_.size());
  for (VarId v : interface_) {
    Interval iv;
    LinearExpr obj = LinearExpr::Var(v);
    LYRIC_ASSIGN_OR_RETURN(LpSolution mx, Maximize(obj));
    if (mx.status == LpStatus::kOptimal) {
      iv.upper = mx.value;
      iv.upper_closed = mx.attained;
    }
    LYRIC_ASSIGN_OR_RETURN(LpSolution mn, Minimize(obj));
    if (mn.status == LpStatus::kOptimal) {
      iv.lower = mn.value;
      iv.lower_closed = mn.attained;
    }
    out.push_back(std::move(iv));
  }
  return out;
}

Result<CstObject> CstObject::Canonicalize(CanonicalLevel level) const {
  DisjunctiveExistential out_body;
  for (const ExistentialConjunction& ec : body_.disjuncts()) {
    LYRIC_ASSIGN_OR_RETURN(Conjunction simplified,
                           Canonical::Simplify(ec.body(), level));
    if (level >= CanonicalLevel::kCheap && simplified.HasConstantFalse()) {
      continue;  // Inconsistent-disjunct deletion.
    }
    out_body.AddDisjunct(ExistentialConjunction(simplified, ec.bound()));
  }
  CstObject out;
  out.interface_ = interface_;
  out.body_ = std::move(out_body);
  out.family_ = family_;
  return out;
}

Result<std::string> CstObject::CanonicalString() const {
  LYRIC_ASSIGN_OR_RETURN(CstObject canon, Canonicalize(CanonicalLevel::kCheap));
  // Positional interface renaming.
  static std::vector<VarId>* positional = new std::vector<VarId>();
  while (positional->size() < interface_.size()) {
    positional->push_back(
        Variable::Intern("@" + std::to_string(positional->size())));
  }
  std::vector<VarId> target(positional->begin(),
                            positional->begin() +
                                static_cast<ptrdiff_t>(interface_.size()));
  LYRIC_ASSIGN_OR_RETURN(CstObject renamed, canon.RenameTo(target));
  // Render each disjunct with bound variables renamed by first occurrence.
  std::vector<std::string> parts;
  for (const ExistentialConjunction& ec : renamed.body_.disjuncts()) {
    Conjunction body = ec.body();
    std::map<VarId, VarId> bound_renaming;
    size_t counter = 0;
    for (const LinearConstraint& atom : body.atoms()) {
      for (const auto& [v, coeff] : atom.lhs().terms()) {
        (void)coeff;
        if (ec.bound().count(v) && !bound_renaming.count(v)) {
          bound_renaming[v] =
              Variable::Intern("@b" + std::to_string(counter++));
        }
      }
    }
    body = body.Rename(bound_renaming);
    body.SortAndDedupe();
    VarSet new_bound;
    for (const auto& [from, to] : bound_renaming) {
      (void)from;
      new_bound.insert(to);
    }
    parts.push_back(ExistentialConjunction(body, new_bound).ToString());
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  // Interface header.
  std::vector<std::string> dims;
  for (VarId v : target) dims.push_back(Variable::Name(v));
  std::string body_text = parts.empty() ? "false" : Join(parts, " or ");
  return "((" + Join(dims, ", ") + ") | " + body_text + ")";
}

std::string CstObject::ToString() const {
  std::vector<std::string> dims;
  for (VarId v : interface_) dims.push_back(Variable::Name(v));
  return "((" + Join(dims, ", ") + ") | " + body_.ToString() + ")";
}

}  // namespace lyric
