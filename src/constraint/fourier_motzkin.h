// Quantifier elimination for conjunctions of linear constraints.
//
// The paper's conjunctive and disjunctive families (§3.1) only permit
// *restricted* projection — eliminating one variable, or keeping at most
// one — precisely because those two cases are polynomial:
//
//   * eliminating ONE variable is a single Fourier-Motzkin step: solve an
//     equality when one mentions the variable, otherwise combine each
//     lower bound with each upper bound (quadratic output);
//   * keeping AT MOST ONE variable reduces to linear programming: the
//     projection of a convex set onto a line is an interval, so two LP
//     calls (min and max of the kept variable) plus attainment checks
//     recover it exactly — no iterated elimination, no blowup.
//
// General projection (ProjectOnto with several kept and several eliminated
// variables) is provided for the existential families' ToDnf conversion
// and is exponential in the worst case; bench/bench_projection measures
// the difference, reproducing the paper's §3.1 argument.
//
// Disequalities must not mention an eliminated variable (the projection of
// a punctured polyhedron is not conjunctive); the DNF layer splits t != 0
// into t < 0 or t > 0 first.

#ifndef LYRIC_CONSTRAINT_FOURIER_MOTZKIN_H_
#define LYRIC_CONSTRAINT_FOURIER_MOTZKIN_H_

#include <optional>

#include "constraint/conjunction.h"

namespace lyric {

/// Quantifier-elimination entry points over conjunctions.
class FourierMotzkin {
 public:
  /// Eliminates exactly one variable (one restricted-projection step).
  /// Fails with InvalidArgument if a disequality mentions `var`.
  static Result<Conjunction> EliminateVariable(const Conjunction& c,
                                               VarId var);

  /// Projects onto at most one variable using LP intervals (the paper's
  /// other restricted-projection case; polynomial). `keep == nullopt`
  /// projects onto zero variables: TRUE iff satisfiable. Disequalities
  /// mentioning an eliminated variable are rejected.
  static Result<Conjunction> ProjectOntoAtMostOne(const Conjunction& c,
                                                  std::optional<VarId> keep);

  /// Projects onto an arbitrary variable set by iterated elimination
  /// (min lower*upper product heuristic; exponential worst case). Cheap
  /// per-step simplification keeps intermediate systems small.
  static Result<Conjunction> ProjectOnto(const Conjunction& c,
                                         const VarSet& keep);

  /// The variables of `c` NOT in `keep` (helper shared with the DNF layer).
  static VarSet VarsToEliminate(const Conjunction& c, const VarSet& keep);
};

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_FOURIER_MOTZKIN_H_
