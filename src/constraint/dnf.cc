#include "constraint/dnf.h"

#include <algorithm>

#include "constraint/fourier_motzkin.h"
#include "constraint/simplex.h"
#include "exec/governor.h"

namespace lyric {

Dnf::Dnf(std::vector<Conjunction> disjuncts) {
  for (Conjunction& c : disjuncts) AddDisjunct(std::move(c));
}

bool Dnf::IsTrue() const {
  for (const Conjunction& c : disjuncts_) {
    if (c.IsTrue()) return true;
  }
  return false;
}

void Dnf::AddDisjunct(Conjunction c) {
  if (c.HasConstantFalse()) return;
  // Every materialized disjunct passes through here, so this is the one
  // choke point for the governor's max_disjuncts cap. Once tripped we
  // stop growing the formula — the truncated Dnf never escapes because
  // every Result-bearing consumer re-checks the token before returning.
  if (exec::AccountDisjuncts(1, "dnf.add_disjunct")) return;
  disjuncts_.push_back(std::move(c));
}

Dnf Dnf::Or(const Dnf& o) const {
  Dnf out = *this;
  for (const Conjunction& c : o.disjuncts_) out.AddDisjunct(c);
  return out;
}

Dnf Dnf::And(const Dnf& o) const {
  Dnf out;
  for (const Conjunction& a : disjuncts_) {
    if (exec::CancellationRequested()) break;  // Product blowup; stop early.
    for (const Conjunction& b : o.disjuncts_) {
      out.AddDisjunct(a.Conjoin(b));
    }
  }
  return out;
}

Dnf Dnf::NegateConjunction(const Conjunction& c) {
  // not(a1 and ... and ak) = not(a1) or ... or not(ak); each atom's
  // negation is one atom, except equalities which split in two.
  Dnf out;
  if (c.IsTrue()) return Dnf::False();
  for (const LinearConstraint& atom : c.atoms()) {
    for (const LinearConstraint& neg : atom.Negate()) {
      Conjunction piece;
      piece.Add(neg);
      out.AddDisjunct(std::move(piece));
    }
  }
  return out;
}

Dnf Dnf::Negate() const {
  // not(C1 or ... or Cn) = not(C1) and ... and not(Cn).
  if (disjuncts_.empty()) return True();
  Dnf out = NegateConjunction(disjuncts_[0]);
  for (size_t i = 1; i < disjuncts_.size(); ++i) {
    if (exec::CancellationRequested()) break;  // Exponential; stop early.
    out = out.And(NegateConjunction(disjuncts_[i]));
  }
  return out;
}

Dnf Dnf::SplitDisequalities() const {
  Dnf out;
  for (const Conjunction& c : disjuncts_) {
    if (exec::CancellationRequested()) break;  // 2^k split; stop early.
    // Peel disequalities one by one, doubling the local disjunct list.
    std::vector<Conjunction> pending{Conjunction()};
    for (const LinearConstraint& atom : c.atoms()) {
      if (!atom.IsDisequality()) {
        for (Conjunction& p : pending) p.Add(atom);
        continue;
      }
      // The doubling happens here, before AddDisjunct sees the pieces, so
      // charge it against the disjunct cap directly.
      if (exec::AccountDisjuncts(pending.size(), "dnf.split_disequalities")) {
        break;
      }
      LinearConstraint lt(atom.lhs(), RelOp::kLt);
      LinearConstraint gt(-atom.lhs(), RelOp::kLt);
      std::vector<Conjunction> next;
      next.reserve(pending.size() * 2);
      for (const Conjunction& p : pending) {
        Conjunction a = p;
        a.Add(lt);
        next.push_back(std::move(a));
        Conjunction b = p;
        b.Add(gt);
        next.push_back(std::move(b));
      }
      pending = std::move(next);
    }
    for (Conjunction& p : pending) out.AddDisjunct(std::move(p));
  }
  return out;
}

namespace {

// Applies a per-conjunct projection, splitting disequalities only in the
// disjuncts that need it.
template <typename Fn>
Result<Dnf> PerDisjunct(const Dnf& d, const VarSet& eliminated, Fn&& fn) {
  Dnf out;
  for (const Conjunction& c : d.disjuncts()) {
    bool needs_split = false;
    for (const LinearConstraint& atom : c.atoms()) {
      if (!atom.IsDisequality()) continue;
      for (const auto& [v, coeff] : atom.lhs().terms()) {
        (void)coeff;
        if (eliminated.count(v)) {
          needs_split = true;
          break;
        }
      }
      if (needs_split) break;
    }
    std::vector<Conjunction> pieces;
    if (needs_split) {
      Dnf split = Dnf(c).SplitDisequalities();
      pieces = split.disjuncts();
    } else {
      pieces = {c};
    }
    for (const Conjunction& piece : pieces) {
      LYRIC_ASSIGN_OR_RETURN(Conjunction projected, fn(piece));
      out.AddDisjunct(std::move(projected));
    }
  }
  return out;
}

}  // namespace

Result<Dnf> Dnf::EliminateVariable(VarId var) const {
  return PerDisjunct(*this, VarSet{var}, [&](const Conjunction& c) {
    return FourierMotzkin::EliminateVariable(c, var);
  });
}

Result<Dnf> Dnf::ProjectOntoAtMostOne(std::optional<VarId> keep) const {
  VarSet keep_set;
  if (keep.has_value()) keep_set.insert(*keep);
  // The eliminated set differs per disjunct; gather the union.
  VarSet all_elim;
  for (const Conjunction& c : disjuncts_) {
    for (VarId v : FourierMotzkin::VarsToEliminate(c, keep_set)) {
      all_elim.insert(v);
    }
  }
  return PerDisjunct(*this, all_elim, [&](const Conjunction& c) {
    return FourierMotzkin::ProjectOntoAtMostOne(c, keep);
  });
}

Result<Dnf> Dnf::ProjectOnto(const VarSet& keep) const {
  VarSet all_elim;
  for (const Conjunction& c : disjuncts_) {
    for (VarId v : FourierMotzkin::VarsToEliminate(c, keep)) {
      all_elim.insert(v);
    }
  }
  return PerDisjunct(*this, all_elim, [&](const Conjunction& c) {
    return FourierMotzkin::ProjectOnto(c, keep);
  });
}

VarSet Dnf::FreeVars() const {
  VarSet out;
  for (const Conjunction& c : disjuncts_) c.CollectVars(&out);
  return out;
}

Dnf Dnf::Substitute(VarId var, const LinearExpr& replacement) const {
  Dnf out;
  for (const Conjunction& c : disjuncts_) {
    out.AddDisjunct(c.Substitute(var, replacement));
  }
  return out;
}

Dnf Dnf::Rename(const std::map<VarId, VarId>& renaming) const {
  Dnf out;
  for (const Conjunction& c : disjuncts_) {
    out.AddDisjunct(c.Rename(renaming));
  }
  return out;
}

Result<bool> Dnf::Satisfiable() const {
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("dnf.satisfiable"));
  for (const Conjunction& c : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(c));
    if (sat) return true;
  }
  return false;
}

Result<std::optional<Assignment>> Dnf::FindPoint() const {
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("dnf.find_point"));
  for (const Conjunction& c : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(std::optional<Assignment> pt,
                           Simplex::FindPoint(c));
    if (pt.has_value()) return pt;
  }
  return std::optional<Assignment>();
}

Result<bool> Dnf::Eval(const Assignment& assignment) const {
  for (const Conjunction& c : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(bool holds, c.Eval(assignment));
    if (holds) return true;
  }
  return false;
}

int Dnf::Compare(const Dnf& o) const {
  size_t n = std::min(disjuncts_.size(), o.disjuncts_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = disjuncts_[i].Compare(o.disjuncts_[i]);
    if (c != 0) return c;
  }
  if (disjuncts_.size() != o.disjuncts_.size()) {
    return disjuncts_.size() < o.disjuncts_.size() ? -1 : 1;
  }
  return 0;
}

std::string Dnf::ToString() const {
  if (disjuncts_.empty()) return "false";
  if (disjuncts_.size() == 1) return disjuncts_[0].ToString();
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += " or ";
    out += "(" + disjuncts_[i].ToString() + ")";
  }
  return out;
}

size_t Dnf::Hash() const {
  size_t h = 0x777;
  for (const Conjunction& c : disjuncts_) {
    h ^= c.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace lyric
