// Sparse linear expressions over exact rationals:
//   c0 + c1*x1 + ... + cm*xm.

#ifndef LYRIC_CONSTRAINT_LINEAR_EXPR_H_
#define LYRIC_CONSTRAINT_LINEAR_EXPR_H_

#include <map>
#include <ostream>
#include <string>

#include "arith/rational.h"
#include "constraint/variable.h"
#include "util/result.h"

namespace lyric {

/// An assignment of rational values to variables.
using Assignment = std::map<VarId, Rational>;

/// A linear expression: constant + sum of coefficient*variable terms.
/// Zero-coefficient terms are never stored, so structural equality is
/// semantic equality.
class LinearExpr {
 public:
  /// Constructs the zero expression.
  LinearExpr() = default;
  /// Constructs a constant expression.
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  /// Returns the expression consisting of the single term `coeff * var`.
  static LinearExpr Term(Rational coeff, VarId var);
  /// Returns the expression `1 * var`.
  static LinearExpr Var(VarId var) { return Term(Rational(1), var); }
  /// Returns the constant expression `c`.
  static LinearExpr Constant(Rational c) { return LinearExpr(std::move(c)); }

  const Rational& constant() const { return constant_; }
  /// Coefficient of `var` (zero if absent).
  const Rational& Coeff(VarId var) const;
  /// The terms, keyed by variable id in increasing order.
  const std::map<VarId, Rational>& terms() const { return terms_; }

  bool IsConstant() const { return terms_.empty(); }

  /// Adds `coeff * var` to this expression.
  void AddTerm(VarId var, const Rational& coeff);
  /// Adds a constant.
  void AddConstant(const Rational& c) { constant_ += c; }

  LinearExpr operator+(const LinearExpr& o) const;
  LinearExpr operator-(const LinearExpr& o) const;
  LinearExpr operator-() const;
  /// Multiplies every coefficient and the constant by `k`.
  LinearExpr Scale(const Rational& k) const;

  bool operator==(const LinearExpr& o) const {
    return constant_ == o.constant_ && terms_ == o.terms_;
  }
  bool operator!=(const LinearExpr& o) const { return !(*this == o); }

  /// Total order for canonical sorting (lexicographic on terms then
  /// constant).
  int Compare(const LinearExpr& o) const;

  /// Variables with non-zero coefficient.
  VarSet FreeVars() const;
  /// Adds this expression's variables into `out`.
  void CollectVars(VarSet* out) const;

  /// Substitutes `replacement` for `var` (replacement may mention any
  /// variables, including `var` itself is not allowed — asserts).
  LinearExpr Substitute(VarId var, const LinearExpr& replacement) const;

  /// Renames variables according to `renaming` (ids absent from the map are
  /// kept). The renaming must be injective on this expression's variables;
  /// collisions merge coefficients, which is what joint renaming wants.
  LinearExpr Rename(const std::map<VarId, VarId>& renaming) const;

  /// Evaluates under `assignment`; every free variable must be assigned.
  Result<Rational> Eval(const Assignment& assignment) const;

  /// Renders e.g. "2*x + 3*y - 5". The zero expression renders as "0".
  std::string ToString() const;

  size_t Hash() const;

 private:
  Rational constant_;
  std::map<VarId, Rational> terms_;
};

inline std::ostream& operator<<(std::ostream& os, const LinearExpr& e) {
  return os << e.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_LINEAR_EXPR_H_
