// Canonical forms for constraints (§3.1 of the paper, following the
// conventions of [BJM93] for linear constraint databases).
//
// The paper commits to exactly two simplifications of disjunctions —
// deletion of inconsistent disjuncts and deletion of syntactic duplicates
// — because full redundant-disjunct detection is co-NP-complete. Within a
// single conjunct it additionally allows the classic conjunctive canonical
// form: solving equalities (Gaussian substitution), dropping trivially
// true atoms, and optionally removing LP-redundant inequalities.
//
// Canonical forms are orthogonal to the language semantics: two distinct
// canonical forms may still denote the same point set (the paper accepts
// this for CST-object oid comparison); bench/bench_canonical measures the
// cost of each level.

#ifndef LYRIC_CONSTRAINT_CANONICAL_H_
#define LYRIC_CONSTRAINT_CANONICAL_H_

#include "constraint/dnf.h"

namespace lyric {

/// How much work to spend canonicalizing.
enum class CanonicalLevel {
  /// Sort + syntactic dedupe + constant folding only (no LP calls).
  kSyntactic,
  /// + Gaussian equality solving, inconsistent-disjunct deletion (one
  /// simplex feasibility call per disjunct). The paper's default.
  kCheap,
  /// + LP-based removal of redundant atoms within each conjunct
  /// (quadratically many simplex calls; [BJM93] conjunctive form).
  kRedundancy,
};

const char* CanonicalLevelToString(CanonicalLevel level);

/// Canonicalization entry points.
class Canonical {
 public:
  /// Canonicalizes a single conjunction. At kCheap and above, an
  /// unsatisfiable conjunction collapses to Conjunction::False().
  static Result<Conjunction> Simplify(const Conjunction& c,
                                      CanonicalLevel level);

  /// Canonicalizes a DNF: per-conjunct Simplify, deletion of inconsistent
  /// disjuncts (kCheap+), sorting, and syntactic duplicate deletion.
  static Result<Dnf> Simplify(const Dnf& d, CanonicalLevel level);

  /// Gaussian step only: uses each equality to substitute out one pivot
  /// variable from every other atom, keeping the equality in solved form.
  /// Exposed for the ablation bench.
  static Conjunction SolveEqualities(const Conjunction& c);
};

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_CANONICAL_H_
