// Interned constraint variables.
//
// Constraint variables ("x", "y", "w1", ...) appear in CST attributes, in
// class interfaces, and in query formulas. They are interned into small
// integer ids so that linear expressions can use cheap sparse maps, and so
// that variable identity is exact string identity (the paper's implicit
// schema-derived equalities rely on this: two attributes sharing the
// variable name `w` share the variable).

#ifndef LYRIC_CONSTRAINT_VARIABLE_H_
#define LYRIC_CONSTRAINT_VARIABLE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace lyric {

/// Dense id of an interned variable.
using VarId = uint32_t;

/// A set of variable ids, ordered for deterministic iteration.
using VarSet = std::set<VarId>;

/// Process-wide variable interner. Thread-safe: the parallel evaluator
/// interns query and freshened-bound variables from worker threads
/// concurrently. Fresh() ids depend on call order and are therefore not
/// deterministic across schedules — nothing rendered to users may depend
/// on a fresh id's spelling (CstObject::CanonicalString renames bound
/// variables by first occurrence for exactly this reason).
class Variable {
 public:
  /// Returns the id for `name`, interning it on first use.
  static VarId Intern(const std::string& name);

  /// Returns the name of an interned id.
  static const std::string& Name(VarId id);

  /// Returns a fresh variable guaranteed distinct from every variable
  /// interned so far, with a name derived from `hint` (e.g. "x$17").
  /// Used to rename quantified variables apart.
  static VarId Fresh(const std::string& hint);

  /// Number of variables interned so far (diagnostic).
  static size_t Count();

 private:
  Variable() = delete;
};

/// Renders a VarSet as "{x, y, z}".
std::string VarSetToString(const VarSet& vars);

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_VARIABLE_H_
