// CST objects: constraints as first-class values (§3.2).
//
// A CST object is a (possibly infinite) collection of points in
// n-dimensional space, represented by a constraint formula over an ordered
// *interface* of n dimension variables. In the data model a CST object is
// a logical oid whose identity is the canonical form of its constraint;
// CstObject::CanonicalString provides that identity (invariant under
// renaming of the interface, as the paper requires of CST expressions).

#ifndef LYRIC_CONSTRAINT_CST_OBJECT_H_
#define LYRIC_CONSTRAINT_CST_OBJECT_H_

#include <ostream>

#include "constraint/canonical.h"
#include "constraint/existential.h"
#include "constraint/family.h"
#include "constraint/simplex.h"

namespace lyric {

/// A first-class constraint object with an ordered variable interface.
class CstObject {
 public:
  /// Constructs the 0-dimensional TRUE object.
  CstObject();

  /// Builds a conjunctive CST object. Fails if `interface_vars` repeats a
  /// variable or the body constrains variables outside the interface.
  static Result<CstObject> FromConjunction(std::vector<VarId> interface_vars,
                                           Conjunction body);
  /// Builds a disjunctive CST object.
  static Result<CstObject> FromDnf(std::vector<VarId> interface_vars,
                                   Dnf body);
  /// Builds from a disjunctive existential body; the family is inferred
  /// structurally (1 disjunct / no quantifier => smaller families).
  static Result<CstObject> Make(std::vector<VarId> interface_vars,
                                DisjunctiveExistential body);

  /// Dimension (interface arity).
  size_t Dimension() const { return interface_.size(); }
  const std::vector<VarId>& Interface() const { return interface_; }
  const DisjunctiveExistential& Body() const { return body_; }
  ConstraintFamily Family() const { return family_; }

  /// Renames the interface positionally to `new_interface` (the paper's
  /// predicate invocation O(x1,...,xn)). Capture-free; fails on arity
  /// mismatch or repeated target variables.
  Result<CstObject> RenameTo(const std::vector<VarId>& new_interface) const;

  /// Conjunction of the point sets; interfaces merge by variable name
  /// (shared names identify — the basis of the schema-derived implicit
  /// equalities). Resulting interface: this interface followed by the new
  /// variables of `o`. Family: join (conjunctive x disjunctive stays
  /// within the lattice).
  Result<CstObject> Conjoin(const CstObject& o) const;
  /// Disjunction of the point sets (same merge rule).
  Result<CstObject> Disjoin(const CstObject& o) const;
  /// Complement of a conjunctive object (yields disjunctive); fails for
  /// other families (the paper only negates conjunctive constraints).
  Result<CstObject> Negate() const;

  /// Projection onto `new_interface` (§3.1 projection connector; the new
  /// interface may introduce fresh unconstrained dimensions). For
  /// conjunctive and disjunctive objects a *restricted* projection
  /// (eliminating at most one variable, or keeping at most one) is
  /// performed eagerly and stays in the family; any other projection
  /// escalates into the corresponding existential family by marking the
  /// dropped variables bound (constant time).
  Result<CstObject> Project(const std::vector<VarId>& new_interface) const;

  /// Like Project but forces eager quantifier elimination regardless of
  /// cost (used by benches to reproduce the §3.1 blowup argument).
  Result<CstObject> ProjectEager(
      const std::vector<VarId>& new_interface) const;

  /// Emptiness / membership / implication.
  Result<bool> Satisfiable() const { return body_.Satisfiable(); }
  /// Point membership; `point` is positional over the interface.
  Result<bool> Contains(const std::vector<Rational>& point) const;
  /// this |= o, positionally (o is renamed to this interface first).
  Result<bool> Entails(const CstObject& o) const;
  /// Geometric equivalence (mutual entailment).
  Result<bool> EquivalentTo(const CstObject& o) const;

  /// Linear optimization over the point set (sup/inf over the closure;
  /// LpSolution::attained distinguishes max from sup).
  Result<LpSolution> Maximize(const LinearExpr& objective) const;
  Result<LpSolution> Minimize(const LinearExpr& objective) const;

  /// One dimension of a bounding box; absent bounds mean unbounded.
  struct Interval {
    std::optional<Rational> lower;
    bool lower_closed = false;
    std::optional<Rational> upper;
    bool upper_closed = false;
  };
  /// The exact per-dimension bounding intervals (2 LPs per dimension).
  /// Fails if the object is empty.
  Result<std::vector<Interval>> BoundingBox() const;

  /// Canonicalizes the body in place (per-disjunct simplification,
  /// inconsistent-disjunct deletion, syntactic dedupe).
  Result<CstObject> Canonicalize(CanonicalLevel level) const;

  /// The identity string of the CST oid: body canonicalized at kCheap,
  /// interface renamed positionally, bound variables renamed by first
  /// occurrence — equal strings mean equal objects up to the (incomplete,
  /// as §3.1 accepts) canonical form.
  Result<std::string> CanonicalString() const;

  /// Human-readable "((x, y) | x + y <= 3)".
  std::string ToString() const;

 private:
  Status CheckBodyVars() const;
  static ConstraintFamily InferFamily(const DisjunctiveExistential& body);

  std::vector<VarId> interface_;
  DisjunctiveExistential body_;
  ConstraintFamily family_;
};

inline std::ostream& operator<<(std::ostream& os, const CstObject& o) {
  return os << o.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_CST_OBJECT_H_
