// Existential conjunctive and disjunctive existential constraints (§3.1).
//
// The paper deliberately does NOT eliminate general existential
// quantifiers (the cost and the result size can be exponential); instead
// these two families *carry* their quantifiers:
//
//   existential conjunctive :  exists y1..yk . (conjunction)
//   disjunctive existential :  disjunction of the above
//
// Projection in these families is a constant-time operation (mark the
// dropped variables bound); satisfiability ignores the quantifier prefix;
// entailment and conversion to plain DNF eliminate quantifiers on demand.

#ifndef LYRIC_CONSTRAINT_EXISTENTIAL_H_
#define LYRIC_CONSTRAINT_EXISTENTIAL_H_

#include <optional>
#include <ostream>

#include "constraint/dnf.h"

namespace lyric {

/// exists bound . body — one disjunct of a disjunctive existential
/// constraint. Bound variables are kept renamed apart from free variables
/// of other formulas by the combination operations.
class ExistentialConjunction {
 public:
  /// Constructs TRUE (empty body, no quantifiers).
  ExistentialConjunction() = default;
  /// Quantifier-free wrapper.
  explicit ExistentialConjunction(Conjunction body)
      : body_(std::move(body)) {}
  /// exists (bound ∩ vars(body)) . body.
  ExistentialConjunction(Conjunction body, VarSet bound);

  const Conjunction& body() const { return body_; }
  const VarSet& bound() const { return bound_; }
  /// Free variables: vars(body) minus bound.
  VarSet FreeVars() const;

  /// Conjunction; both sides' bound variables are renamed apart first, so
  /// quantified variables never capture.
  ExistentialConjunction Conjoin(const ExistentialConjunction& o) const;

  /// Projection onto `keep`: free variables outside `keep` become bound.
  /// Always constant-time (this is why the family exists).
  ExistentialConjunction Project(const VarSet& keep) const;

  /// Renames free variables; bound variables are freshened first when a
  /// renaming target would collide with one.
  ExistentialConjunction RenameFree(
      const std::map<VarId, VarId>& renaming) const;

  /// Substitutes an expression for a free variable (capture-avoiding).
  ExistentialConjunction SubstituteFree(VarId var,
                                        const LinearExpr& replacement) const;

  /// Satisfiability (the quantifier prefix is irrelevant).
  Result<bool> Satisfiable() const;

  /// Truth for a total assignment of the free variables: substitutes and
  /// asks whether some assignment of the bound variables satisfies the
  /// body.
  Result<bool> EvalFree(const Assignment& assignment) const;

  /// Eliminates the bound variables (exponential worst case) yielding an
  /// equivalent quantifier-free conjunction.
  Result<Conjunction> ToConjunction() const;

  /// Returns a copy whose bound variables are fresh (used before mixing
  /// with other formulas).
  ExistentialConjunction FreshenBound() const;

  /// "exists y . (x - y <= 0)".
  std::string ToString() const;

  VarSet AllVars() const { return body_.FreeVars(); }

 private:
  Conjunction body_;
  VarSet bound_;
};

/// A disjunction of existential conjunctions — the largest family; every
/// other family embeds into it, and every LyriC CST formula normalizes to
/// it.
class DisjunctiveExistential {
 public:
  /// Constructs FALSE.
  DisjunctiveExistential() = default;
  explicit DisjunctiveExistential(ExistentialConjunction ec) {
    AddDisjunct(std::move(ec));
  }
  explicit DisjunctiveExistential(std::vector<ExistentialConjunction> ds)
      : disjuncts_(std::move(ds)) {}

  static DisjunctiveExistential True() {
    return DisjunctiveExistential(ExistentialConjunction());
  }
  static DisjunctiveExistential False() { return {}; }
  static DisjunctiveExistential FromDnf(const Dnf& d);
  static DisjunctiveExistential FromConjunction(Conjunction c) {
    return DisjunctiveExistential(ExistentialConjunction(std::move(c)));
  }

  const std::vector<ExistentialConjunction>& disjuncts() const {
    return disjuncts_;
  }
  bool IsFalse() const { return disjuncts_.empty(); }
  size_t size() const { return disjuncts_.size(); }

  void AddDisjunct(ExistentialConjunction ec);

  DisjunctiveExistential Or(const DisjunctiveExistential& o) const;
  /// Conjunction by distribution (capture-avoiding per pair).
  DisjunctiveExistential And(const DisjunctiveExistential& o) const;
  /// Projection onto `keep` (constant time per disjunct).
  DisjunctiveExistential Project(const VarSet& keep) const;

  DisjunctiveExistential RenameFree(
      const std::map<VarId, VarId>& renaming) const;
  DisjunctiveExistential SubstituteFree(VarId var,
                                        const LinearExpr& replacement) const;

  VarSet FreeVars() const;

  Result<bool> Satisfiable() const;
  /// A witness over the free variables of some satisfiable disjunct.
  Result<std::optional<Assignment>> FindPoint() const;
  Result<bool> EvalFree(const Assignment& assignment) const;

  /// Quantifier elimination into a plain DNF (exponential worst case).
  Result<Dnf> ToDnf() const;

  /// this |= o over the free variables. Quantifiers on the left skolemize
  /// away; quantifiers on the right are eliminated via ToDnf.
  Result<bool> Entails(const DisjunctiveExistential& o) const;

  std::string ToString() const;

 private:
  std::vector<ExistentialConjunction> disjuncts_;
};

inline std::ostream& operator<<(std::ostream& os,
                                const ExistentialConjunction& e) {
  return os << e.ToString();
}
inline std::ostream& operator<<(std::ostream& os,
                                const DisjunctiveExistential& e) {
  return os << e.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_EXISTENTIAL_H_
