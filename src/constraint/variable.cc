#include "constraint/variable.h"

#include <cassert>
#include <unordered_map>

namespace lyric {

namespace {

struct Interner {
  std::unordered_map<std::string, VarId> ids;
  std::vector<std::string> names;
  uint64_t fresh_counter = 0;
};

Interner& GetInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace

VarId Variable::Intern(const std::string& name) {
  Interner& in = GetInterner();
  auto it = in.ids.find(name);
  if (it != in.ids.end()) return it->second;
  VarId id = static_cast<VarId>(in.names.size());
  in.names.push_back(name);
  in.ids.emplace(name, id);
  return id;
}

const std::string& Variable::Name(VarId id) {
  Interner& in = GetInterner();
  assert(id < in.names.size());
  return in.names[id];
}

VarId Variable::Fresh(const std::string& hint) {
  Interner& in = GetInterner();
  for (;;) {
    std::string candidate = hint + "$" + std::to_string(in.fresh_counter++);
    if (in.ids.find(candidate) == in.ids.end()) {
      return Intern(candidate);
    }
  }
}

size_t Variable::Count() { return GetInterner().names.size(); }

std::string VarSetToString(const VarSet& vars) {
  std::string out = "{";
  bool first = true;
  for (VarId v : vars) {
    if (!first) out += ", ";
    first = false;
    out += Variable::Name(v);
  }
  out += "}";
  return out;
}

}  // namespace lyric
