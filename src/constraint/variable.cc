#include "constraint/variable.h"

#include <cassert>
#include <deque>
#include <unordered_map>

#include "util/sync.h"

namespace lyric {

namespace {

// Thread-safe: the parallel evaluator interns variables from worker
// threads. Names live in a deque so the references handed out by Name()
// stay stable across later interning. Reads (Name/Count) vastly outnumber
// writes once a workload warms up, hence the reader/writer lock.
struct Interner {
  sync::SharedMutex mu{sync::LockRank::kVarInterner, "var_interner"};
  std::unordered_map<std::string, VarId> ids LYRIC_GUARDED_BY(mu);
  std::deque<std::string> names LYRIC_GUARDED_BY(mu);
  uint64_t fresh_counter LYRIC_GUARDED_BY(mu) = 0;
};

Interner& GetInterner() {
  static Interner* interner = new Interner();
  return *interner;
}

VarId InternLocked(Interner& in, const std::string& name)
    LYRIC_REQUIRES(in.mu) {
  auto it = in.ids.find(name);
  if (it != in.ids.end()) return it->second;
  VarId id = static_cast<VarId>(in.names.size());
  in.names.push_back(name);
  in.ids.emplace(name, id);
  return id;
}

}  // namespace

VarId Variable::Intern(const std::string& name) {
  Interner& in = GetInterner();
  sync::WriterMutexLock lock(in.mu);
  return InternLocked(in, name);
}

const std::string& Variable::Name(VarId id) {
  Interner& in = GetInterner();
  sync::ReaderMutexLock lock(in.mu);
  assert(id < in.names.size());
  return in.names[id];
}

VarId Variable::Fresh(const std::string& hint) {
  Interner& in = GetInterner();
  sync::WriterMutexLock lock(in.mu);
  for (;;) {
    std::string candidate = hint + "$" + std::to_string(in.fresh_counter++);
    if (in.ids.find(candidate) == in.ids.end()) {
      return InternLocked(in, candidate);
    }
  }
}

size_t Variable::Count() {
  Interner& in = GetInterner();
  sync::ReaderMutexLock lock(in.mu);
  return in.names.size();
}

std::string VarSetToString(const VarSet& vars) {
  std::string out = "{";
  bool first = true;
  for (VarId v : vars) {
    if (!first) out += ", ";
    first = false;
    out += Variable::Name(v);
  }
  out += "}";
  return out;
}

}  // namespace lyric
