#include "constraint/family.h"

namespace lyric {

const char* ConstraintFamilyToString(ConstraintFamily f) {
  switch (f) {
    case ConstraintFamily::kConjunctive:
      return "conjunctive";
    case ConstraintFamily::kExistentialConjunctive:
      return "existential-conjunctive";
    case ConstraintFamily::kDisjunctive:
      return "disjunctive";
    case ConstraintFamily::kDisjunctiveExistential:
      return "disjunctive-existential";
  }
  return "?";
}

ConstraintFamily FamilyJoin(ConstraintFamily a, ConstraintFamily b) {
  if (a == b) return a;
  if (a == ConstraintFamily::kConjunctive) return b;
  if (b == ConstraintFamily::kConjunctive) return a;
  // Distinct non-conjunctive families join at the top.
  return ConstraintFamily::kDisjunctiveExistential;
}

bool FamilyIncluded(ConstraintFamily sub, ConstraintFamily super) {
  return FamilyJoin(sub, super) == super;
}

}  // namespace lyric
