#include "constraint/linear_expr.h"

#include <cassert>

namespace lyric {

LinearExpr LinearExpr::Term(Rational coeff, VarId var) {
  LinearExpr out;
  out.AddTerm(var, coeff);
  return out;
}

const Rational& LinearExpr::Coeff(VarId var) const {
  static const Rational kZero;
  auto it = terms_.find(var);
  return it == terms_.end() ? kZero : it->second;
}

void LinearExpr::AddTerm(VarId var, const Rational& coeff) {
  if (coeff.IsZero()) return;
  auto [it, inserted] = terms_.emplace(var, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second.IsZero()) terms_.erase(it);
  }
}

LinearExpr LinearExpr::operator+(const LinearExpr& o) const {
  LinearExpr out = *this;
  out.constant_ += o.constant_;
  for (const auto& [var, coeff] : o.terms_) out.AddTerm(var, coeff);
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& o) const {
  return *this + (-o);
}

LinearExpr LinearExpr::operator-() const { return Scale(Rational(-1)); }

LinearExpr LinearExpr::Scale(const Rational& k) const {
  LinearExpr out;
  if (k.IsZero()) return out;
  out.constant_ = constant_ * k;
  for (const auto& [var, coeff] : terms_) {
    out.terms_.emplace(var, coeff * k);
  }
  return out;
}

int LinearExpr::Compare(const LinearExpr& o) const {
  auto it = terms_.begin();
  auto jt = o.terms_.begin();
  while (it != terms_.end() && jt != o.terms_.end()) {
    if (it->first != jt->first) return it->first < jt->first ? -1 : 1;
    int c = it->second.Compare(jt->second);
    if (c != 0) return c;
    ++it;
    ++jt;
  }
  if (it != terms_.end()) return 1;
  if (jt != o.terms_.end()) return -1;
  return constant_.Compare(o.constant_);
}

VarSet LinearExpr::FreeVars() const {
  VarSet out;
  CollectVars(&out);
  return out;
}

void LinearExpr::CollectVars(VarSet* out) const {
  for (const auto& [var, coeff] : terms_) {
    (void)coeff;
    out->insert(var);
  }
}

LinearExpr LinearExpr::Substitute(VarId var,
                                  const LinearExpr& replacement) const {
  assert(replacement.Coeff(var).IsZero() &&
         "substitution replacement mentions the substituted variable");
  auto it = terms_.find(var);
  if (it == terms_.end()) return *this;
  Rational coeff = it->second;
  LinearExpr out = *this;
  out.terms_.erase(var);
  return out + replacement.Scale(coeff);
}

LinearExpr LinearExpr::Rename(const std::map<VarId, VarId>& renaming) const {
  LinearExpr out;
  out.constant_ = constant_;
  for (const auto& [var, coeff] : terms_) {
    auto it = renaming.find(var);
    out.AddTerm(it == renaming.end() ? var : it->second, coeff);
  }
  return out;
}

Result<Rational> LinearExpr::Eval(const Assignment& assignment) const {
  Rational out = constant_;
  for (const auto& [var, coeff] : terms_) {
    auto it = assignment.find(var);
    if (it == assignment.end()) {
      return Status::InvalidArgument("unassigned variable '" +
                                     Variable::Name(var) + "' in Eval");
    }
    out += coeff * it->second;
  }
  return out;
}

std::string LinearExpr::ToString() const {
  if (terms_.empty()) return constant_.ToString();
  std::string out;
  bool first = true;
  for (const auto& [var, coeff] : terms_) {
    if (first) {
      if (coeff == Rational(1)) {
        out += Variable::Name(var);
      } else if (coeff == Rational(-1)) {
        out += "-" + Variable::Name(var);
      } else {
        out += coeff.ToString() + "*" + Variable::Name(var);
      }
      first = false;
      continue;
    }
    if (coeff.IsNegative()) {
      Rational abs = coeff.Abs();
      out += " - ";
      if (abs != Rational(1)) out += abs.ToString() + "*";
    } else {
      out += " + ";
      if (coeff != Rational(1)) out += coeff.ToString() + "*";
    }
    out += Variable::Name(var);
  }
  if (!constant_.IsZero()) {
    if (constant_.IsNegative()) {
      out += " - " + constant_.Abs().ToString();
    } else {
      out += " + " + constant_.ToString();
    }
  }
  return out;
}

size_t LinearExpr::Hash() const {
  size_t h = constant_.Hash();
  for (const auto& [var, coeff] : terms_) {
    h ^= (static_cast<size_t>(var) + 0x9e3779b97f4a7c15ull) + (h << 6) +
         (h >> 2);
    h ^= coeff.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace lyric
