// Disjunctive constraints: disjunctions of conjunctions (DNF).
//
// This is the engine form of the paper's *disjunctive* family (§3.1):
// closed under disjunction, conjunction (by distribution), negation of a
// conjunctive constraint, and restricted projection. The canonical-form
// simplifications the paper prescribes — deletion of inconsistent
// disjuncts and deletion of syntactic duplicates, explicitly NOT the
// co-NP-complete redundant-disjunct detection — live in canonical.h.

#ifndef LYRIC_CONSTRAINT_DNF_H_
#define LYRIC_CONSTRAINT_DNF_H_

#include <optional>
#include <ostream>

#include "constraint/conjunction.h"

namespace lyric {

/// A disjunction of conjunctions of linear atoms. The empty disjunction is
/// FALSE; the single empty conjunction is TRUE.
class Dnf {
 public:
  /// Constructs FALSE.
  Dnf() = default;
  /// Wraps a single conjunct.
  explicit Dnf(Conjunction c) { AddDisjunct(std::move(c)); }
  explicit Dnf(std::vector<Conjunction> disjuncts);

  static Dnf True() { return Dnf(Conjunction()); }
  static Dnf False() { return Dnf(); }

  const std::vector<Conjunction>& disjuncts() const { return disjuncts_; }
  bool IsFalse() const { return disjuncts_.empty(); }
  /// True iff some disjunct is the trivial TRUE conjunction (syntactic).
  bool IsTrue() const;
  size_t size() const { return disjuncts_.size(); }

  /// Appends a disjunct, dropping it if syntactically FALSE.
  void AddDisjunct(Conjunction c);

  /// Logical OR (concatenation of disjunct lists).
  Dnf Or(const Dnf& o) const;
  /// Logical AND by distribution: |this| * |o| candidate disjuncts.
  Dnf And(const Dnf& o) const;
  /// Negation of a single conjunction, as a DNF (one disjunct per atom,
  /// two for each equality atom).
  static Dnf NegateConjunction(const Conjunction& c);
  /// Full negation via De Morgan + distribution (exponential; intended for
  /// small formulas and tests — entailment uses refutation instead).
  Dnf Negate() const;

  /// Rewrites every disequality t != 0 as (t < 0) or (t > 0); the result
  /// has no kNeq atoms and is projection-safe.
  Dnf SplitDisequalities() const;

  /// Eliminates one variable in every disjunct (restricted projection).
  Result<Dnf> EliminateVariable(VarId var) const;
  /// Projects every disjunct onto at most one variable (LP intervals).
  Result<Dnf> ProjectOntoAtMostOne(std::optional<VarId> keep) const;
  /// Projects onto an arbitrary variable set (exponential worst case).
  Result<Dnf> ProjectOnto(const VarSet& keep) const;

  VarSet FreeVars() const;
  Dnf Substitute(VarId var, const LinearExpr& replacement) const;
  Dnf Rename(const std::map<VarId, VarId>& renaming) const;

  /// Semantic satisfiability (per-disjunct simplex).
  Result<bool> Satisfiable() const;
  /// A witness point of some satisfiable disjunct.
  Result<std::optional<Assignment>> FindPoint() const;
  /// Truth under a total assignment.
  Result<bool> Eval(const Assignment& assignment) const;

  bool operator==(const Dnf& o) const { return disjuncts_ == o.disjuncts_; }
  bool operator!=(const Dnf& o) const { return !(*this == o); }
  /// Total order on canonicalized DNFs.
  int Compare(const Dnf& o) const;

  /// "(...) or (...)"; "false" for the empty DNF.
  std::string ToString() const;

  size_t Hash() const;

 private:
  std::vector<Conjunction> disjuncts_;
};

inline std::ostream& operator<<(std::ostream& os, const Dnf& d) {
  return os << d.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_DNF_H_
