#include "constraint/simplex.h"

#include <algorithm>
#include <cassert>

#include "constraint/solver_cache.h"
#include "exec/governor.h"
#include "obs/metrics.h"

namespace lyric {

const char* LpStatusToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

std::optional<LpStatus> LpStatusFromString(std::string_view s) {
  if (s == "optimal") return LpStatus::kOptimal;
  if (s == "infeasible") return LpStatus::kInfeasible;
  if (s == "unbounded") return LpStatus::kUnbounded;
  return std::nullopt;
}

namespace {

// ---------------------------------------------------------------------------
// Core tableau simplex (maximization, all variables >= 0, Bland's rule).
// ---------------------------------------------------------------------------

struct CoreSolution {
  LpStatus status = LpStatus::kInfeasible;
  Rational value;
  std::vector<Rational> point;  // one value per column
};

// A dense two-phase primal simplex over exact rationals. Columns are
// non-negative decision variables; rows are equality constraints (callers
// add slack columns for inequalities).
class CoreLp {
 public:
  explicit CoreLp(size_t num_cols) : num_cols_(num_cols) {}

  // Adds the row `coeffs . y = rhs`.
  void AddRow(std::vector<Rational> coeffs, Rational rhs) {
    assert(coeffs.size() == num_cols_);
    rows_.push_back(std::move(coeffs));
    rhs_.push_back(std::move(rhs));
  }

  // Maximizes `obj . y` (+ nothing; callers track constants).
  CoreSolution Maximize(const std::vector<Rational>& obj) {
    assert(obj.size() == num_cols_);
    LYRIC_OBS_COUNT("simplex.lp_solves");
    static obs::Histogram& solve_hist =
        obs::Registry::Global().GetHistogram("simplex.solve");
    obs::ScopedHistogramTimer scoped_timer(solve_hist);
    // The tableau (rows + artificials) is the dominant transient
    // allocation; charge it against the governor's memory budget.
    exec::AccountKernelMemory(
        rows_.size() * (num_cols_ + rows_.size()) * sizeof(Rational),
        "simplex.tableau");
    // Normalize rhs >= 0.
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rhs_[i].IsNegative()) {
        for (Rational& a : rows_[i]) a = -a;
        rhs_[i] = -rhs_[i];
      }
    }
    // Phase 1: add one artificial per row, minimize their sum.
    size_t m = rows_.size();
    size_t total_cols = num_cols_ + m;
    for (size_t i = 0; i < m; ++i) {
      for (size_t r = 0; r < m; ++r) {
        rows_[r].push_back(Rational(r == i ? 1 : 0));
      }
    }
    basis_.resize(m);
    for (size_t i = 0; i < m; ++i) basis_[i] = num_cols_ + i;

    // Phase-1 objective: maximize -(sum of artificials). Reduced-cost row.
    std::vector<Rational> z(total_cols);
    Rational zval;
    for (size_t j = num_cols_; j < total_cols; ++j) z[j] = Rational(-1);
    // Artificials are basic with cost -1: fold their rows into z.
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < total_cols; ++j) z[j] += rows_[i][j];
      zval -= rhs_[i];
    }
    static obs::Counter& phase1_iters =
        obs::Registry::Global().GetCounter("simplex.phase1_iterations");
    LpStatus st = RunSimplex(&z, &zval, total_cols, &phase1_iters);
    (void)st;  // Phase 1 cannot be unbounded (objective <= 0).
    if (!zval.IsZero()) {
      LYRIC_OBS_COUNT("simplex.lp_infeasible");
      return {LpStatus::kInfeasible, Rational(), {}};
    }
    // Drive any artificial out of the basis.
    for (size_t i = 0; i < m; ++i) {
      if (basis_[i] < num_cols_) continue;
      size_t pivot_col = num_cols_;
      bool found = false;
      for (size_t j = 0; j < num_cols_; ++j) {
        if (!rows_[i][j].IsZero()) {
          pivot_col = j;
          found = true;
          break;
        }
      }
      if (found) {
        Pivot(i, pivot_col, &z, &zval, total_cols);
      }
      // else: the row is 0 = 0 over structural columns; harmless.
    }
    // Phase 2: real objective, restricted to structural columns (keep the
    // artificial columns but forbid them from entering by giving reduced
    // cost handling below a hard cutoff at num_cols_).
    std::vector<Rational> z2(total_cols);
    Rational z2val;
    for (size_t j = 0; j < num_cols_; ++j) z2[j] = obj[j];
    for (size_t i = 0; i < m; ++i) {
      size_t b = basis_[i];
      if (b < num_cols_ && !obj[b].IsZero()) {
        Rational c = obj[b];
        for (size_t j = 0; j < total_cols; ++j) z2[j] -= c * rows_[i][j];
        z2val += c * rhs_[i];
      }
    }
    static obs::Counter& phase2_iters =
        obs::Registry::Global().GetCounter("simplex.phase2_iterations");
    LpStatus st2 = RunSimplex(&z2, &z2val, num_cols_, &phase2_iters);
    if (st2 == LpStatus::kUnbounded) {
      LYRIC_OBS_COUNT("simplex.lp_unbounded");
      return {LpStatus::kUnbounded, Rational(), {}};
    }
    CoreSolution out;
    out.status = LpStatus::kOptimal;
    out.value = z2val;
    out.point.assign(num_cols_, Rational());
    for (size_t i = 0; i < m; ++i) {
      if (basis_[i] < num_cols_) out.point[basis_[i]] = rhs_[i];
    }
    return out;
  }

 private:
  // Runs simplex with Dantzig's largest-coefficient rule, falling back to
  // Bland's rule (which cannot cycle) once the iteration count suggests
  // degeneracy. Entering columns are restricted to [0, entering_limit).
  // `iteration_counter` receives one increment per simplex iteration.
  LpStatus RunSimplex(std::vector<Rational>* z, Rational* zval,
                      size_t entering_limit,
                      obs::Counter* iteration_counter) {
    const size_t bland_after = 20 * (rows_.size() + entering_limit) + 200;
    size_t iterations = 0;
    for (;;) {
      // Cooperative cancellation: pivots are counted per iteration and
      // the wall clock sampled every 64. On a trip we bail with a dummy
      // status — the governed public entry points re-check the token
      // before publishing, so this value never escapes.
      if (exec::AccountPivots(1, "simplex.run") ||
          ((iterations & 63) == 0 &&
           exec::GovernorScope::Current() != nullptr &&
           exec::GovernorScope::Current()->CheckDeadline("simplex.run"))) {
        return LpStatus::kInfeasible;
      }
      iteration_counter->Increment();
      size_t enter = entering_limit;
      if (iterations++ < bland_after) {
        // Dantzig: most positive reduced cost.
        for (size_t j = 0; j < entering_limit; ++j) {
          if ((*z)[j].Sign() > 0 &&
              (enter == entering_limit || (*z)[j] > (*z)[enter])) {
            enter = j;
          }
        }
      } else {
        // Bland: smallest-index column with positive reduced cost.
        for (size_t j = 0; j < entering_limit; ++j) {
          if ((*z)[j].Sign() > 0) {
            enter = j;
            break;
          }
        }
      }
      if (enter == entering_limit) return LpStatus::kOptimal;
      // Ratio test with Bland tie-break on the leaving basic variable.
      size_t leave = rows_.size();
      Rational best_ratio;
      for (size_t i = 0; i < rows_.size(); ++i) {
        if (rows_[i][enter].Sign() <= 0) continue;
        Rational ratio = rhs_[i] / rows_[i][enter];
        if (leave == rows_.size() || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leave])) {
          leave = i;
          best_ratio = ratio;
        }
      }
      if (leave == rows_.size()) return LpStatus::kUnbounded;
      Pivot(leave, enter, z, zval, z->size());
    }
  }

  void Pivot(size_t row, size_t col, std::vector<Rational>* z, Rational* zval,
             size_t total_cols) {
    LYRIC_OBS_COUNT("simplex.pivots");
    Rational p = rows_[row][col];
    assert(!p.IsZero());
    Rational inv = p.Inverse();
    for (size_t j = 0; j < total_cols; ++j) rows_[row][j] *= inv;
    rhs_[row] *= inv;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i == row) continue;
      Rational f = rows_[i][col];
      if (f.IsZero()) continue;
      for (size_t j = 0; j < total_cols; ++j) {
        rows_[i][j] -= f * rows_[row][j];
      }
      rhs_[i] -= f * rhs_[row];
    }
    Rational fz = (*z)[col];
    if (!fz.IsZero()) {
      for (size_t j = 0; j < total_cols; ++j) {
        (*z)[j] -= fz * rows_[row][j];
      }
      *zval += fz * rhs_[row];
    }
    basis_[row] = col;
  }

  size_t num_cols_;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<size_t> basis_;
};

// ---------------------------------------------------------------------------
// Translation from conjunctions over free variables to the core form.
// ---------------------------------------------------------------------------

// Splits the atoms of `c` by kind. Constant atoms were already folded by
// Conjunction::Add; a remaining constant-false collapses to False().
struct SplitAtoms {
  std::vector<LinearConstraint> closed;  // kEq, kLe
  std::vector<LinearConstraint> strict;  // kLt
  std::vector<LinearConstraint> diseq;   // kNeq
};

SplitAtoms Split(const Conjunction& c) {
  SplitAtoms out;
  for (const LinearConstraint& atom : c.atoms()) {
    switch (atom.op()) {
      case RelOp::kEq:
      case RelOp::kLe:
        out.closed.push_back(atom);
        break;
      case RelOp::kLt:
        out.strict.push_back(atom);
        break;
      case RelOp::kNeq:
        out.diseq.push_back(atom);
        break;
    }
  }
  return out;
}

// Maps each free variable to a pair of non-negative columns (v = y+ - y-),
// plus an optional epsilon column at the end.
class VarMap {
 public:
  VarMap(const Conjunction& c, const LinearExpr& extra, bool with_epsilon) {
    VarSet vars = c.FreeVars();
    extra.CollectVars(&vars);
    for (VarId v : vars) {
      col_of_[v] = vars_.size() * 2;
      vars_.push_back(v);
    }
    with_epsilon_ = with_epsilon;
  }

  size_t num_cols() const { return vars_.size() * 2 + (with_epsilon_ ? 1 : 0); }
  size_t epsilon_col() const {
    assert(with_epsilon_);
    return vars_.size() * 2;
  }

  // Expands `expr relop 0` (with optional +epsilon on the lhs) into a core
  // row `coeffs . y = -constant`, adding a slack column value via the
  // caller. Returns the coefficient vector over the split columns (epsilon
  // included, slack NOT included).
  std::vector<Rational> ExpandCoeffs(const LinearExpr& expr,
                                     bool add_epsilon) const {
    std::vector<Rational> out(num_cols());
    for (const auto& [var, coeff] : expr.terms()) {
      size_t col = col_of_.at(var);
      out[col] = coeff;
      out[col + 1] = -coeff;
    }
    if (add_epsilon) out[epsilon_col()] = Rational(1);
    return out;
  }

  Assignment PointFromCols(const std::vector<Rational>& cols) const {
    Assignment out;
    for (size_t k = 0; k < vars_.size(); ++k) {
      out[vars_[k]] = cols[2 * k] - cols[2 * k + 1];
    }
    return out;
  }

 private:
  std::vector<VarId> vars_;
  std::map<VarId, size_t> col_of_;
  bool with_epsilon_ = false;
};

struct ClosedLpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational value;
  Assignment point;
  Rational epsilon;  // value of the epsilon column, when used
};

// Solves max/min `objective` over the *closed* system given by
// `closed` atoms plus `strict` atoms relaxed as (expr + eps <= 0) when
// `use_epsilon`, or as (expr <= 0) otherwise. When `use_epsilon`, the
// objective must be empty and the LP maximizes eps subject to eps <= 1.
ClosedLpResult SolveClosed(const SplitAtoms& atoms,
                           const LinearExpr& objective, bool maximize,
                           bool use_epsilon) {
  VarMap vm(Conjunction(), objective, use_epsilon);
  // VarMap needs all constraint vars too; rebuild with a conjunction view.
  std::vector<LinearConstraint> all = atoms.closed;
  all.insert(all.end(), atoms.strict.begin(), atoms.strict.end());
  Conjunction cview(all);
  vm = VarMap(cview, objective, use_epsilon);

  // Count slack columns: one per inequality row (closed kLe + all strict
  // rows) plus one for the eps <= 1 bound row.
  size_t num_ineq = 0;
  for (const LinearConstraint& a : atoms.closed) {
    if (a.op() == RelOp::kLe) ++num_ineq;
  }
  num_ineq += atoms.strict.size();
  if (use_epsilon) ++num_ineq;  // eps <= 1

  size_t struct_cols = vm.num_cols();
  size_t total = struct_cols + num_ineq;
  CoreLp lp(total);

  size_t slack = struct_cols;
  auto add_atom_row = [&](const LinearExpr& expr, bool is_eq,
                          bool add_epsilon) {
    std::vector<Rational> coeffs = vm.ExpandCoeffs(expr, add_epsilon);
    coeffs.resize(total);
    if (!is_eq) coeffs[slack++] = Rational(1);
    // expr <= 0  ==>  terms . y + slack = -constant.
    lp.AddRow(std::move(coeffs), -expr.constant());
  };

  for (const LinearConstraint& a : atoms.closed) {
    add_atom_row(a.lhs(), a.op() == RelOp::kEq, false);
  }
  for (const LinearConstraint& a : atoms.strict) {
    add_atom_row(a.lhs(), false, use_epsilon);
  }
  if (use_epsilon) {
    // eps <= 1.
    std::vector<Rational> coeffs(total);
    coeffs[vm.epsilon_col()] = Rational(1);
    coeffs[slack++] = Rational(1);
    lp.AddRow(std::move(coeffs), Rational(1));
  }

  std::vector<Rational> obj(total);
  Rational obj_constant;
  if (use_epsilon) {
    obj[vm.epsilon_col()] = Rational(1);
  } else {
    LinearExpr dir = maximize ? objective : -objective;
    std::vector<Rational> expanded = vm.ExpandCoeffs(dir, false);
    for (size_t j = 0; j < expanded.size(); ++j) obj[j] = expanded[j];
    obj_constant = dir.constant();
  }

  CoreSolution core = lp.Maximize(obj);
  ClosedLpResult out;
  out.status = core.status;
  if (core.status != LpStatus::kOptimal) return out;
  out.value = core.value + obj_constant;
  if (!use_epsilon && !maximize) out.value = -out.value;
  out.point = vm.PointFromCols(core.point);
  if (use_epsilon) out.epsilon = core.point[vm.epsilon_col()];
  return out;
}

// Satisfiability of closed + strict atoms only (no disequalities).
// Returns the epsilon-LP result so callers can reuse the interior point.
ClosedLpResult SatNoDiseq(const SplitAtoms& atoms) {
  if (atoms.strict.empty()) {
    ClosedLpResult r = SolveClosed(atoms, LinearExpr(), true, false);
    if (r.status == LpStatus::kUnbounded) {
      // Zero objective cannot be unbounded; defensive.
      r.status = LpStatus::kOptimal;
    }
    r.epsilon = Rational(1);  // No strict atoms: any feasible point works.
    return r;
  }
  ClosedLpResult r = SolveClosed(atoms, LinearExpr(), true, true);
  if (r.status == LpStatus::kOptimal && r.epsilon.Sign() <= 0) {
    r.status = LpStatus::kInfeasible;  // Only the closure is feasible.
  }
  return r;
}

// The closure of the atoms: strict atoms become non-strict, disequalities
// are dropped.
SplitAtoms ClosureAtoms(const SplitAtoms& atoms) {
  SplitAtoms out;
  out.closed = atoms.closed;
  for (const LinearConstraint& a : atoms.strict) {
    out.closed.push_back(a.Closure());
  }
  return out;
}

// True iff expr == 0 everywhere on the (closed) feasible set; vacuously
// true when infeasible.
bool ClosedEntailsZero(const SplitAtoms& closure, const LinearExpr& expr) {
  ClosedLpResult mx = SolveClosed(closure, expr, true, false);
  if (mx.status == LpStatus::kInfeasible) return true;
  if (mx.status == LpStatus::kUnbounded || !mx.value.IsZero()) return false;
  ClosedLpResult mn = SolveClosed(closure, expr, false, false);
  if (mn.status == LpStatus::kUnbounded || !mn.value.IsZero()) return false;
  return true;
}

}  // namespace

Result<bool> Simplex::IsSatisfiable(const Conjunction& c) {
  LYRIC_OBS_COUNT("simplex.calls.is_satisfiable");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.is_satisfiable"));
  SolverCache& cache = SolverCache::Global();
  // A recorded budget trip for this key fails the query fast (replaying
  // the original trip) instead of re-burning the budget on a doomed solve.
  if (std::optional<Status> doomed = cache.LookupSatTombstone(c)) {
    return *doomed;
  }
  if (std::optional<bool> cached = cache.LookupSat(c)) return *cached;
  bool sat = [&] {
    SplitAtoms atoms = Split(c);
    ClosedLpResult base = SatNoDiseq(atoms);
    if (base.status != LpStatus::kOptimal) return false;
    // A nonempty convex set lies inside a finite union of hyperplanes iff
    // it lies inside one of them, so the disequalities can be checked one
    // at a time against the closure.
    SplitAtoms closure = ClosureAtoms(atoms);
    for (const LinearConstraint& d : atoms.diseq) {
      if (ClosedEntailsZero(closure, d.lhs())) return false;
    }
    return true;
  }();
  // A tripped run may have bailed mid-solve: report the trip (tombstoning
  // budget trips so repeat runs fail fast) and never store the (possibly
  // bogus) verdict.
  if (Status st = exec::CheckCancellation("simplex.is_satisfiable");
      !st.ok()) {
    if (st.IsResourceExhausted()) cache.StoreSatTombstone(c);
    return st;
  }
  cache.StoreSat(c, sat);
  return sat;
}

Result<std::optional<Assignment>> Simplex::FindPoint(const Conjunction& c) {
  LYRIC_OBS_COUNT("simplex.calls.find_point");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.find_point"));
  LYRIC_ASSIGN_OR_RETURN(bool sat, IsSatisfiable(c));
  if (!sat) return std::optional<Assignment>();

  SplitAtoms atoms = Split(c);
  ClosedLpResult base = SatNoDiseq(atoms);
  Assignment x = base.point;

  // x satisfies the closed and strict atoms. Repair each violated
  // disequality by blending toward a witness that breaks it; convexity
  // keeps the closed atoms satisfied and a small enough step keeps the
  // strict ones.
  SplitAtoms closure = ClosureAtoms(atoms);
  for (const LinearConstraint& d : atoms.diseq) {
    Rational tx = d.lhs().Eval(x).ValueOr(Rational());
    if (!tx.IsZero()) continue;
    // Find y in the closure with t(y) != 0 (exists: IsSatisfiable passed).
    ClosedLpResult mx = SolveClosed(closure, d.lhs(), true, false);
    ClosedLpResult pick = mx;
    if (mx.status != LpStatus::kOptimal || mx.value.IsZero()) {
      ClosedLpResult mn = SolveClosed(closure, d.lhs(), false, false);
      pick = mn;
    }
    if (pick.status != LpStatus::kOptimal) {
      // Unbounded objective: walk a little along the improving ray is not
      // directly available from the tableau; fall back to a bounded probe
      // by adding |t| <= 1... simpler: bound t in [-1, 1] and re-solve.
      SplitAtoms bounded = closure;
      bounded.closed.push_back(
          LinearConstraint(d.lhs() - LinearExpr::Constant(Rational(1)),
                           RelOp::kLe));
      bounded.closed.push_back(
          LinearConstraint(-d.lhs() - LinearExpr::Constant(Rational(1)),
                           RelOp::kLe));
      pick = SolveClosed(bounded, d.lhs(), true, false);
      if (pick.status != LpStatus::kOptimal || pick.value.IsZero()) {
        pick = SolveClosed(bounded, d.lhs(), false, false);
      }
    }
    if (pick.status != LpStatus::kOptimal || pick.value.IsZero()) {
      // A governed run may have bailed out of the witness LP mid-solve;
      // report the trip rather than a spurious internal error.
      LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.find_point"));
      return Status::Internal("FindPoint: no witness for disequality " +
                              d.ToString());
    }
    const Assignment& y = pick.point;
    // Largest step bound that keeps every strict atom satisfied.
    Rational bound(1);
    for (const LinearConstraint& s : atoms.strict) {
      Rational ex = s.lhs().Eval(x).ValueOr(Rational());
      // Fill in any variable of s missing from x or y as 0 — cannot happen
      // because VarMap covered all constraint vars.
      Rational ey = s.lhs().Eval(y).ValueOr(Rational());
      if (ey >= ex) {
        if (ey == ex) continue;  // Constant along the segment; stays < 0.
        // (1-l)ex + l*ey < 0  <=>  l < -ex / (ey - ex).
        Rational lim = (-ex) / (ey - ex);
        if (lim < bound) bound = lim;
      }
    }
    // Choose l in (0, bound) avoiding the finitely many values where some
    // other disequality's expression crosses zero.
    for (int denom = 2;; ++denom) {
      Rational l = bound * Rational(1, denom);
      Assignment cand;
      for (const auto& [var, vx] : x) {
        Rational vy = vx;
        auto it = y.find(var);
        if (it != y.end()) vy = it->second;
        cand[var] = vx + (vy - vx) * l;
      }
      // y may have variables x lacks (same VarMap; defensive).
      for (const auto& [var, vy] : y) {
        if (!cand.count(var)) cand[var] = vy * l;
      }
      bool ok = true;
      for (const LinearConstraint& d2 : atoms.diseq) {
        Rational v = d2.lhs().Eval(cand).ValueOr(Rational(1));
        // Only reject candidates that break an already-satisfied (or the
        // current) disequality; each disequality excludes at most one l.
        if (v.IsZero() && (&d2 == &d || !d2.lhs().Eval(x).ValueOr(
                                            Rational(1)).IsZero())) {
          ok = false;
          break;
        }
      }
      if (ok) {
        x = std::move(cand);
        break;
      }
      if (denom > static_cast<int>(atoms.diseq.size()) + 4) {
        return Status::Internal("FindPoint: step selection failed");
      }
    }
  }
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.find_point"));
  return std::optional<Assignment>(std::move(x));
}

Result<LpSolution> Simplex::Maximize(const LinearExpr& objective,
                                     const Conjunction& c) {
  LYRIC_OBS_COUNT("simplex.calls.maximize");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.maximize"));
  LpSolution out;
  {
    // Fast path: a closed system (no strict atoms, no disequalities) needs
    // exactly one LP — the optimum is always attained.
    SplitAtoms atoms = Split(c);
    if (atoms.strict.empty() && atoms.diseq.empty()) {
      ClosedLpResult r = SolveClosed(atoms, objective, true, false);
      LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.maximize"));
      out.status = r.status;
      if (r.status == LpStatus::kOptimal) {
        out.value = r.value;
        out.attained = true;
        out.point = std::move(r.point);
      }
      return out;
    }
  }
  LYRIC_ASSIGN_OR_RETURN(bool sat, IsSatisfiable(c));
  if (!sat) {
    out.status = LpStatus::kInfeasible;
    return out;
  }
  SplitAtoms atoms = Split(c);
  SplitAtoms closure = ClosureAtoms(atoms);
  ClosedLpResult r = SolveClosed(closure, objective, true, false);
  if (r.status == LpStatus::kUnbounded) {
    out.status = LpStatus::kUnbounded;
    return out;
  }
  if (r.status != LpStatus::kOptimal) {
    LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.maximize"));
    return Status::Internal("closure infeasible after sat check");
  }
  out.status = LpStatus::kOptimal;
  out.value = r.value;
  // Attained iff the original set meets the optimal face.
  Conjunction on_face = c;
  on_face.Add(LinearConstraint(objective - LinearExpr::Constant(out.value),
                               RelOp::kEq));
  LYRIC_ASSIGN_OR_RETURN(std::optional<Assignment> pt, FindPoint(on_face));
  if (pt.has_value()) {
    out.attained = true;
    out.point = std::move(*pt);
  } else {
    out.attained = false;
    out.point = r.point;
  }
  return out;
}

Result<LpSolution> Simplex::Minimize(const LinearExpr& objective,
                                     const Conjunction& c) {
  LYRIC_ASSIGN_OR_RETURN(LpSolution neg, Maximize(-objective, c));
  neg.value = -neg.value;
  return neg;
}

Result<bool> Simplex::EntailsZero(const Conjunction& c,
                                  const LinearExpr& expr) {
  LYRIC_OBS_COUNT("simplex.calls.entails_zero");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.entails_zero"));
  SplitAtoms atoms = Split(c);
  // If c itself is unsatisfiable, entailment holds vacuously.
  LYRIC_ASSIGN_OR_RETURN(bool sat, IsSatisfiable(c));
  if (!sat) return true;
  // With c satisfiable, disequalities cannot change the entailment (the
  // punctured set and its closure entail the same linear equalities).
  bool entails = ClosedEntailsZero(ClosureAtoms(atoms), expr);
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("simplex.entails_zero"));
  return entails;
}

}  // namespace lyric
