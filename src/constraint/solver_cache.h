// A sharded, size-bounded memo cache for solver verdicts.
//
// The alibi-query case study (Othman, Kuijpers & Grimson; PAPERS.md) shows
// quantifier-elimination and satisfiability cost dominating real
// constraint-database workloads, and LyriC evaluation re-asks the same
// questions constantly: every candidate binding conjoins the same stored
// CST bodies with a per-object location, and entailment's DPLL case split
// re-probes overlapping conjunctions. This cache memoizes the three pure
// solver entry points:
//
//   * simplex satisfiability verdicts   (Conjunction -> bool),
//   * canonical forms                   (Conjunction x level -> Conjunction),
//   * entailment answers                (Conjunction x Dnf -> bool).
//
// Keys are the structural hash of the constraint objects; a hash hit
// always falls back to full structural equality before a cached value is
// returned, so hash collisions can never change an answer. Entries are
// interned VarId-based, which is exact: two structurally equal
// conjunctions denote the same point set, so every cached verdict is
// deterministic and thread-agnostic.
//
// The cache is sharded (hash-picked shard, one mutex each) so concurrent
// evaluator workers rarely contend, and size-bounded with per-shard LRU
// eviction. Hits/misses/evictions feed the obs metrics registry
// ("solver_cache.*"); lyric_shell's `.cache` prints them.

#ifndef LYRIC_CONSTRAINT_SOLVER_CACHE_H_
#define LYRIC_CONSTRAINT_SOLVER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraint/canonical.h"
#include "constraint/dnf.h"
#include "exec/governor.h"
#include "util/status.h"
#include "util/sync.h"

namespace lyric {

/// Memoizes solver verdicts keyed by constraint structure. Thread-safe.
class SolverCache {
 public:
  /// Aggregate occupancy and traffic counters.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;

    /// hits / (hits + misses), 0 when idle.
    double HitRate() const;
    /// "hits=... misses=... hit_rate=... evictions=... size=.../cap".
    std::string ToString() const;
  };

  /// The process-wide cache consulted by Simplex/Canonical/Entailment.
  /// Initial capacity comes from the LYRIC_CACHE_CAPACITY environment
  /// variable (entries; 0 disables), defaulting to 4096.
  static SolverCache& Global();

  /// A cache bounded at `capacity` entries (0 = disabled: lookups miss,
  /// stores drop). The bound is enforced per shard, so capacities below
  /// the shard count floor at one entry per shard: the effective bound is
  /// max(capacity, kShards).
  explicit SolverCache(size_t capacity);

  SolverCache(const SolverCache&) = delete;
  SolverCache& operator=(const SolverCache&) = delete;

  /// Re-bounds the cache; shrinking evicts LRU entries to fit, capacity 0
  /// clears and disables.
  void set_capacity(size_t capacity);
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return capacity() > 0; }

  /// Drops every entry (capacity is kept).
  void Clear();

  Stats stats() const;

  /// Lifetime traffic counters, readable without touching shard locks.
  /// The evaluator samples these before and after each query to attribute
  /// hit/miss/tombstone deltas to its per-query log record.
  struct Traffic {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t tombstone_hits = 0;
  };
  Traffic traffic() const {
    Traffic t;
    t.hits = hits_.load(std::memory_order_relaxed);
    t.misses = misses_.load(std::memory_order_relaxed);
    t.tombstone_hits = tombstone_hits_.load(std::memory_order_relaxed);
    return t;
  }

  // -- The three memoized verdict families ---------------------------------

  std::optional<bool> LookupSat(const Conjunction& c);
  void StoreSat(const Conjunction& c, bool sat);

  std::optional<Conjunction> LookupCanonical(const Conjunction& c,
                                             CanonicalLevel level);
  void StoreCanonical(const Conjunction& c, CanonicalLevel level,
                      const Conjunction& result);

  std::optional<bool> LookupEntails(const Conjunction& lhs, const Dnf& rhs);
  void StoreEntails(const Conjunction& lhs, const Dnf& rhs, bool holds);

  // -- Governor-aware tombstones -------------------------------------------
  //
  // A governed computation that trips a resource budget (memory / pivots /
  // disjuncts) on a key records a "too expensive" tombstone instead of a
  // verdict. A later *governed* run whose budget for that limit is no
  // larger fails fast: the tombstone replays the original trip (same
  // LimitKind, same site — hence a byte-identical trip Status) without
  // re-burning the budget. Ungoverned runs and runs with a strictly larger
  // budget ignore tombstones and recompute; a successful computation
  // overwrites the tombstone (same key). Deadline trips are never
  // tombstoned — wall-clock cost depends on machine load, not the key.
  // Tombstones live in the LRU and evict like normal entries. Hits count
  // as obs "cache.tombstone.hit", stores as "cache.tombstone.stored".
  //
  // Lookup* returns the replayed trip Status when the tombstone applies,
  // nullopt otherwise. Store* reads the ambient governor token and is a
  // no-op unless it tripped on a budget limit.

  std::optional<Status> LookupSatTombstone(const Conjunction& c);
  void StoreSatTombstone(const Conjunction& c);
  std::optional<Status> LookupCanonicalTombstone(const Conjunction& c,
                                                 CanonicalLevel level);
  void StoreCanonicalTombstone(const Conjunction& c, CanonicalLevel level);
  std::optional<Status> LookupEntailsTombstone(const Conjunction& lhs,
                                               const Dnf& rhs);
  void StoreEntailsTombstone(const Conjunction& lhs, const Dnf& rhs);

  /// Test seam: maps every structural hash through `fn` before bucketing
  /// (e.g. a constant function forces all keys to collide, exercising the
  /// structural-equality fallback). Pass nullptr to restore. Not for
  /// concurrent use with active lookups.
  void SetHashOverrideForTesting(std::function<size_t(size_t)> fn);

 private:
  enum class Kind : uint8_t { kSat, kCanonical, kEntails };

  struct Key {
    Kind kind;
    CanonicalLevel level;  // Meaningful for kCanonical only.
    Conjunction lhs;
    Dnf rhs;  // Meaningful for kEntails only.

    bool operator==(const Key& o) const;
    size_t Hash() const;
  };

  struct Entry {
    Key key;
    size_t hash = 0;  // Possibly overridden; the bucket key.
    bool verdict = false;              // kSat / kEntails.
    Conjunction canonical;             // kCanonical.
    // Tombstone payload: when set, the entry records a budget trip
    // instead of a verdict (verdict/canonical are meaningless).
    bool tombstone = false;
    exec::LimitKind tomb_kind = exec::LimitKind::kNone;
    uint64_t tomb_limit = 0;  ///< The budget value that tripped.
    std::string tomb_site;    ///< First trip site (replayed verbatim).
  };

  struct Shard {
    /// Shard locks never nest with each other (one shard per operation);
    /// tombstone hits take the governor site lock under them, hence the
    /// rank ordering kCacheShard < kGovernor.
    mutable sync::Mutex mu{sync::LockRank::kCacheShard, "cache_shard"};
    /// Front = most recently used.
    std::list<Entry> lru LYRIC_GUARDED_BY(mu);
    /// Structural hash -> entries with that hash (collision chain).
    std::unordered_map<size_t, std::vector<std::list<Entry>::iterator>> index
        LYRIC_GUARDED_BY(mu);
  };

  static constexpr size_t kShards = 16;

  size_t BucketHash(const Key& key) const;
  Shard& ShardFor(size_t hash);
  size_t PerShardCapacity() const;

  /// Returns the entry for `key` in its shard (moving it to the LRU front)
  /// or nullptr.
  Entry* FindLocked(Shard& shard, const Key& key, size_t hash)
      LYRIC_REQUIRES(shard.mu);
  /// Inserts (or overwrites) `entry`, evicting LRU entries past capacity.
  void StoreEntry(Entry entry);
  std::optional<Status> LookupTombstone(const Key& key);
  void StoreTombstone(Key key);
  void EraseFromIndexLocked(Shard& shard, std::list<Entry>::iterator it)
      LYRIC_REQUIRES(shard.mu);

  /// Rough heap footprint of one entry, for the occupancy gauge (exact
  /// accounting would walk every rational; the atom count dominates).
  static size_t ApproxEntryBytes(const Entry& entry);
  /// Retires `entry` from the occupancy accounting.
  void AccountErase(const Entry& entry);
  /// Pushes the occupancy atomics into the "solver_cache.*" gauges.
  void PublishGauges() const;

  std::atomic<size_t> capacity_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> tombstone_hits_{0};
  // Occupancy, maintained at every insert/overwrite/evict/clear so the
  // gauges never need the shard locks.
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> tombstones_{0};
  std::atomic<size_t> approx_bytes_{0};
  std::function<size_t(size_t)> hash_override_;
  Shard shards_[kShards];
};

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_SOLVER_CACHE_H_
