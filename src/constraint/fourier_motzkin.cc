#include "constraint/fourier_motzkin.h"

#include <algorithm>

#include "constraint/simplex.h"
#include "exec/governor.h"
#include "obs/metrics.h"

namespace lyric {

namespace {

// One raw Fourier-Motzkin step; the caller has verified no disequality
// mentions `var`.
Conjunction EliminateStep(const Conjunction& c, VarId var) {
  LYRIC_OBS_COUNT("fm.vars_eliminated");
  // Prefer substitution through an equality mentioning the variable: it is
  // exact, linear-size, and preserves strictness of the other atoms.
  for (size_t i = 0; i < c.atoms().size(); ++i) {
    const LinearConstraint& atom = c.atoms()[i];
    if (!atom.IsEquality()) continue;
    Rational a = atom.lhs().Coeff(var);
    if (a.IsZero()) continue;
    // a*var + rest = 0  =>  var = -rest / a.
    LinearExpr rest = atom.lhs();
    rest.AddTerm(var, -a);
    LinearExpr replacement = (-rest).Scale(a.Inverse());
    Conjunction out;
    for (size_t j = 0; j < c.atoms().size(); ++j) {
      if (j == i) continue;
      out.Add(c.atoms()[j].Substitute(var, replacement));
    }
    LYRIC_OBS_COUNT("fm.equality_substitutions");
    return out;
  }
  // Inequality combination. Normalize each atom mentioning var to
  //   var <= bound   (uppers)  or  var >= bound  (lowers),
  // then pair them up.
  std::vector<std::pair<LinearExpr, bool>> uppers;  // (bound expr, strict)
  std::vector<std::pair<LinearExpr, bool>> lowers;
  Conjunction out;
  for (const LinearConstraint& atom : c.atoms()) {
    Rational a = atom.lhs().Coeff(var);
    if (a.IsZero()) {
      out.Add(atom);
      continue;
    }
    // a*var + rest (<|<=) 0.
    LinearExpr rest = atom.lhs();
    rest.AddTerm(var, -a);
    LinearExpr bound = (-rest).Scale(a.Inverse());
    if (a.Sign() > 0) {
      uppers.emplace_back(std::move(bound), atom.IsStrict());
    } else {
      lowers.emplace_back(std::move(bound), atom.IsStrict());
    }
  }
  LYRIC_OBS_COUNT_N("fm.atoms_generated", lowers.size() * uppers.size());
  // The lowers*uppers product is the quadratic (per step, exponential per
  // projection) blowup; charge it against the governor's memory budget and
  // stop generating once tripped — ProjectOnto's checkpoint reports it.
  if (exec::AccountKernelMemory(
          lowers.size() * uppers.size() * sizeof(LinearConstraint),
          "fm.eliminate")) {
    return out;
  }
  for (const auto& [lo, lo_strict] : lowers) {
    for (const auto& [up, up_strict] : uppers) {
      // lo (<|<=) var (<|<=) up  =>  lo - up (<|<=) 0.
      out.Add(LinearConstraint(lo - up, (lo_strict || up_strict)
                                            ? RelOp::kLt
                                            : RelOp::kLe));
    }
  }
  return out;
}

Status CheckNoDisequalityOn(const Conjunction& c, const VarSet& eliminated) {
  for (const LinearConstraint& atom : c.atoms()) {
    if (!atom.IsDisequality()) continue;
    for (const auto& [v, coeff] : atom.lhs().terms()) {
      (void)coeff;
      if (eliminated.count(v)) {
        return Status::InvalidArgument(
            "cannot eliminate variable '" + Variable::Name(v) +
            "' occurring in disequality " + atom.ToString() +
            "; split disequalities first");
      }
    }
  }
  return Status::OK();
}

}  // namespace

VarSet FourierMotzkin::VarsToEliminate(const Conjunction& c,
                                       const VarSet& keep) {
  VarSet out;
  for (VarId v : c.FreeVars()) {
    if (!keep.count(v)) out.insert(v);
  }
  return out;
}

Result<Conjunction> FourierMotzkin::EliminateVariable(const Conjunction& c,
                                                      VarId var) {
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("fm.eliminate"));
  LYRIC_RETURN_NOT_OK(CheckNoDisequalityOn(c, VarSet{var}));
  Conjunction out = EliminateStep(c, var);
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("fm.eliminate"));
  size_t before_dedupe = out.size();
  out.SortAndDedupe();
  LYRIC_OBS_COUNT_N("fm.atoms_dropped", before_dedupe - out.size());
  return out;
}

Result<Conjunction> FourierMotzkin::ProjectOntoAtMostOne(
    const Conjunction& c, std::optional<VarId> keep) {
  LYRIC_OBS_COUNT("fm.lp_projections");
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("fm.lp_projection"));
  VarSet keep_set;
  if (keep.has_value()) keep_set.insert(*keep);
  LYRIC_RETURN_NOT_OK(CheckNoDisequalityOn(c, VarsToEliminate(c, keep_set)));

  LYRIC_ASSIGN_OR_RETURN(bool sat, Simplex::IsSatisfiable(c));
  if (!sat) return Conjunction::False();
  if (!keep.has_value()) return Conjunction();  // TRUE

  VarId x = *keep;
  VarSet free = c.FreeVars();
  if (!free.count(x)) return Conjunction();  // x unconstrained by c.

  Conjunction out;
  LinearExpr obj = LinearExpr::Var(x);
  LYRIC_ASSIGN_OR_RETURN(LpSolution mx, Simplex::Maximize(obj, c));
  LYRIC_ASSIGN_OR_RETURN(LpSolution mn, Simplex::Minimize(obj, c));
  if (mx.status == LpStatus::kOptimal) {
    LinearExpr e = obj - LinearExpr::Constant(mx.value);
    out.Add(LinearConstraint(e, mx.attained ? RelOp::kLe : RelOp::kLt));
  }
  if (mn.status == LpStatus::kOptimal) {
    LinearExpr e = LinearExpr::Constant(mn.value) - obj;
    out.Add(LinearConstraint(e, mn.attained ? RelOp::kLe : RelOp::kLt));
  }
  // Degenerate interval [v, v] prints better as an equality.
  if (mx.status == LpStatus::kOptimal && mn.status == LpStatus::kOptimal &&
      mx.value == mn.value && mx.attained && mn.attained) {
    Conjunction eq;
    eq.Add(LinearConstraint(obj - LinearExpr::Constant(mx.value), RelOp::kEq));
    out = eq;
  }
  // Disequalities over x alone survive projection verbatim.
  for (const LinearConstraint& atom : c.atoms()) {
    if (atom.IsDisequality()) out.Add(atom);
  }
  out.SortAndDedupe();
  return out;
}

Result<Conjunction> FourierMotzkin::ProjectOnto(const Conjunction& c,
                                                const VarSet& keep) {
  LYRIC_OBS_COUNT("fm.projections");
  static obs::Histogram& project_hist =
      obs::Registry::Global().GetHistogram("fm.project");
  obs::ScopedHistogramTimer scoped_timer(project_hist);
  VarSet elim = VarsToEliminate(c, keep);
  LYRIC_RETURN_NOT_OK(CheckNoDisequalityOn(c, elim));
  Conjunction cur = c;
  while (!elim.empty()) {
    // One check per eliminated variable bounds governed projections: the
    // blowup is across steps (each step can square the atom count).
    LYRIC_RETURN_NOT_OK(exec::CheckCancellation("fm.project"));
    // Re-derive which of the remaining targets still occur.
    VarSet free = cur.FreeVars();
    VarId best = *elim.begin();
    bool found = false;
    long best_cost = 0;
    for (VarId v : elim) {
      if (!free.count(v)) continue;
      // Cost heuristic: equalities are free; otherwise lowers * uppers.
      long lowers = 0, uppers = 0;
      bool has_eq = false;
      for (const LinearConstraint& atom : cur.atoms()) {
        Rational a = atom.lhs().Coeff(v);
        if (a.IsZero()) continue;
        if (atom.IsEquality()) {
          has_eq = true;
          break;
        }
        (a.Sign() > 0 ? uppers : lowers)++;
      }
      long cost = has_eq ? -1 : lowers * uppers - (lowers + uppers);
      if (!found || cost < best_cost) {
        best = v;
        best_cost = cost;
        found = true;
      }
    }
    if (!found) break;  // Remaining targets are absent already.
    cur = EliminateStep(cur, best);
    size_t before_dedupe = cur.size();
    cur.SortAndDedupe();
    LYRIC_OBS_COUNT_N("fm.atoms_dropped", before_dedupe - cur.size());
    elim.erase(best);
    if (cur.HasConstantFalse()) return Conjunction::False();
  }
  LYRIC_RETURN_NOT_OK(exec::CheckCancellation("fm.project"));
  return cur;
}

}  // namespace lyric
