#include "constraint/solver_cache.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {

namespace {

// Simulated cache failure: lookups miss and stores drop. Safe by
// construction — every caller treats a miss as "recompute" — so the
// fault gate can hammer this site and only performance may change.
bool CacheFault() {
  return fault::Enabled() && fault::Inject(fault::kSiteSolverCache);
}

size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

size_t EnvCapacity() {
  const char* env = std::getenv("LYRIC_CACHE_CAPACITY");
  if (env == nullptr || *env == '\0') return 4096;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return 4096;
  return static_cast<size_t>(v);
}

}  // namespace

double SolverCache::Stats::HitRate() const {
  uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

std::string SolverCache::Stats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu hit_rate=%.3f evictions=%llu "
                "size=%zu/%zu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                HitRate(), static_cast<unsigned long long>(evictions), size,
                capacity);
  return buf;
}

SolverCache& SolverCache::Global() {
  static SolverCache* cache = new SolverCache(EnvCapacity());
  return *cache;
}

SolverCache::SolverCache(size_t capacity) : capacity_(capacity) {}

bool SolverCache::Key::operator==(const Key& o) const {
  if (kind != o.kind) return false;
  if (kind == Kind::kCanonical && level != o.level) return false;
  if (!(lhs == o.lhs)) return false;
  if (kind == Kind::kEntails && !(rhs == o.rhs)) return false;
  return true;
}

size_t SolverCache::Key::Hash() const {
  size_t h = static_cast<size_t>(kind) * 0x2545f4914f6cdd1dull;
  if (kind == Kind::kCanonical) {
    h = HashCombine(h, static_cast<size_t>(level));
  }
  h = HashCombine(h, lhs.Hash());
  if (kind == Kind::kEntails) h = HashCombine(h, rhs.Hash());
  return h;
}

size_t SolverCache::BucketHash(const Key& key) const {
  size_t h = key.Hash();
  if (hash_override_) h = hash_override_(h);
  return h;
}

SolverCache::Shard& SolverCache::ShardFor(size_t hash) {
  // The low bits pick the bucket inside the shard map; mix the high bits
  // into the shard choice so both spread.
  return shards_[(hash >> 48) % kShards];
}

size_t SolverCache::PerShardCapacity() const {
  size_t cap = capacity();
  if (cap == 0) return 0;
  size_t per = cap / kShards;
  return per == 0 ? 1 : per;
}

void SolverCache::set_capacity(size_t capacity) {
  capacity_.store(capacity, std::memory_order_relaxed);
  size_t per = PerShardCapacity();
  for (Shard& shard : shards_) {
    sync::MutexLock lock(shard.mu);
    while (shard.lru.size() > per) {
      auto last = std::prev(shard.lru.end());
      AccountErase(*last);
      EraseFromIndexLocked(shard, last);
      shard.lru.erase(last);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  PublishGauges();
}

void SolverCache::Clear() {
  for (Shard& shard : shards_) {
    sync::MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
  entries_.store(0, std::memory_order_relaxed);
  tombstones_.store(0, std::memory_order_relaxed);
  approx_bytes_.store(0, std::memory_order_relaxed);
  PublishGauges();
}

size_t SolverCache::ApproxEntryBytes(const Entry& entry) {
  // Per-atom footprint is dominated by the LinearExpr term vector and two
  // arbitrary-precision rationals; 64 bytes is a workable flat estimate.
  constexpr size_t kPerAtom = 64;
  size_t atoms = entry.key.lhs.size() + entry.canonical.size();
  for (const Conjunction& d : entry.key.rhs.disjuncts()) atoms += d.size();
  return sizeof(Entry) + atoms * kPerAtom + entry.tomb_site.size();
}

void SolverCache::AccountErase(const Entry& entry) {
  entries_.fetch_sub(1, std::memory_order_relaxed);
  if (entry.tombstone) tombstones_.fetch_sub(1, std::memory_order_relaxed);
  approx_bytes_.fetch_sub(ApproxEntryBytes(entry),
                          std::memory_order_relaxed);
}

void SolverCache::PublishGauges() const {
  // Only the global instance feeds the process-wide gauges; short-lived
  // per-test caches must not clobber its occupancy numbers.
  static const SolverCache* global = &Global();
  if (this != global) return;
  obs::Registry& reg = obs::Registry::Global();
  static obs::Gauge& entries_gauge = reg.GetGauge("solver_cache.entries");
  static obs::Gauge& bytes_gauge =
      reg.GetGauge("solver_cache.approx_bytes");
  static obs::Gauge& tombstones_gauge =
      reg.GetGauge("solver_cache.tombstones");
  entries_gauge.Set(
      static_cast<int64_t>(entries_.load(std::memory_order_relaxed)));
  bytes_gauge.Set(
      static_cast<int64_t>(approx_bytes_.load(std::memory_order_relaxed)));
  tombstones_gauge.Set(
      static_cast<int64_t>(tombstones_.load(std::memory_order_relaxed)));
}

SolverCache::Stats SolverCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.capacity = capacity();
  for (const Shard& shard : shards_) {
    sync::MutexLock lock(shard.mu);
    out.size += shard.lru.size();
  }
  return out;
}

void SolverCache::SetHashOverrideForTesting(
    std::function<size_t(size_t)> fn) {
  Clear();
  hash_override_ = std::move(fn);
}

void SolverCache::EraseFromIndexLocked(Shard& shard,
                                       std::list<Entry>::iterator it) {
  auto bucket = shard.index.find(it->hash);
  if (bucket == shard.index.end()) return;
  auto& chain = bucket->second;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i] == it) {
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (chain.empty()) shard.index.erase(bucket);
}

SolverCache::Entry* SolverCache::FindLocked(Shard& shard, const Key& key,
                                            size_t hash) {
  auto bucket = shard.index.find(hash);
  if (bucket == shard.index.end()) return nullptr;
  for (auto it : bucket->second) {
    // Structural equality guards against hash collisions: an equal hash
    // with a different formula must never serve a cached verdict.
    if (it->key == key) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      return &*it;
    }
  }
  return nullptr;
}

void SolverCache::StoreEntry(Entry entry) {
  if (!enabled()) return;
  Shard& shard = ShardFor(entry.hash);
  size_t per = PerShardCapacity();
  {
    sync::MutexLock lock(shard.mu);
    if (Entry* existing = FindLocked(shard, entry.key, entry.hash)) {
      AccountErase(*existing);
      entries_.fetch_add(1, std::memory_order_relaxed);
      if (entry.tombstone) {
        tombstones_.fetch_add(1, std::memory_order_relaxed);
      }
      approx_bytes_.fetch_add(ApproxEntryBytes(entry),
                              std::memory_order_relaxed);
      *existing = std::move(entry);
      PublishGauges();
      return;
    }
    entries_.fetch_add(1, std::memory_order_relaxed);
    if (entry.tombstone) tombstones_.fetch_add(1, std::memory_order_relaxed);
    approx_bytes_.fetch_add(ApproxEntryBytes(entry),
                            std::memory_order_relaxed);
    shard.lru.push_front(std::move(entry));
    shard.index[shard.lru.front().hash].push_back(shard.lru.begin());
    while (shard.lru.size() > per) {
      auto last = std::prev(shard.lru.end());
      AccountErase(*last);
      EraseFromIndexLocked(shard, last);
      shard.lru.erase(last);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      LYRIC_OBS_COUNT("solver_cache.evictions");
    }
  }
  PublishGauges();
}

std::optional<Status> SolverCache::LookupTombstone(const Key& key) {
  if (!enabled() || CacheFault()) return std::nullopt;
  // Ungoverned runs never fail fast — they are entitled to the full
  // (unbounded) computation and will overwrite the tombstone on success.
  exec::CancellationToken* token = exec::GovernorScope::Current();
  if (token == nullptr) return std::nullopt;
  size_t hash = BucketHash(key);
  Shard& shard = ShardFor(hash);
  sync::MutexLock lock(shard.mu);
  Entry* e = FindLocked(shard, key, hash);
  if (e == nullptr || !e->tombstone) return std::nullopt;
  // Only budgets at or below the one that tripped are doomed; a larger
  // budget (or an unlimited one) must genuinely retry the computation.
  std::optional<uint64_t> limit = token->LimitFor(e->tomb_kind);
  if (!limit.has_value() || *limit > e->tomb_limit) return std::nullopt;
  token->ForceTrip(e->tomb_kind, e->tomb_site.c_str());
  tombstone_hits_.fetch_add(1, std::memory_order_relaxed);
  LYRIC_OBS_COUNT("cache.tombstone.hit");
  return token->ToStatus();
}

void SolverCache::StoreTombstone(Key key) {
  if (!enabled() || CacheFault()) return;
  exec::CancellationToken* token = exec::GovernorScope::Current();
  if (token == nullptr) return;
  const exec::LimitKind kind = token->tripped_kind();
  // Budget trips only: wall-clock (deadline) cost is a property of the
  // machine's load, not of the key, so it is never tombstoned.
  if (kind != exec::LimitKind::kMemory && kind != exec::LimitKind::kPivots &&
      kind != exec::LimitKind::kDisjuncts) {
    return;
  }
  std::optional<uint64_t> limit = token->LimitFor(kind);
  if (!limit.has_value()) return;
  Entry entry;
  entry.key = std::move(key);
  entry.hash = BucketHash(entry.key);
  entry.tombstone = true;
  entry.tomb_kind = kind;
  entry.tomb_limit = *limit;
  entry.tomb_site = token->Report().site;
  LYRIC_OBS_COUNT("cache.tombstone.stored");
  StoreEntry(std::move(entry));
}

std::optional<Status> SolverCache::LookupSatTombstone(const Conjunction& c) {
  return LookupTombstone(Key{Kind::kSat, CanonicalLevel::kSyntactic, c, Dnf()});
}

void SolverCache::StoreSatTombstone(const Conjunction& c) {
  StoreTombstone(Key{Kind::kSat, CanonicalLevel::kSyntactic, c, Dnf()});
}

std::optional<Status> SolverCache::LookupCanonicalTombstone(
    const Conjunction& c, CanonicalLevel level) {
  return LookupTombstone(Key{Kind::kCanonical, level, c, Dnf()});
}

void SolverCache::StoreCanonicalTombstone(const Conjunction& c,
                                          CanonicalLevel level) {
  StoreTombstone(Key{Kind::kCanonical, level, c, Dnf()});
}

std::optional<Status> SolverCache::LookupEntailsTombstone(
    const Conjunction& lhs, const Dnf& rhs) {
  return LookupTombstone(Key{Kind::kEntails, CanonicalLevel::kSyntactic, lhs,
                             rhs});
}

void SolverCache::StoreEntailsTombstone(const Conjunction& lhs,
                                        const Dnf& rhs) {
  StoreTombstone(Key{Kind::kEntails, CanonicalLevel::kSyntactic, lhs, rhs});
}

std::optional<bool> SolverCache::LookupSat(const Conjunction& c) {
  if (!enabled() || CacheFault()) return std::nullopt;
  Key key{Kind::kSat, CanonicalLevel::kSyntactic, c, Dnf()};
  size_t hash = BucketHash(key);
  Shard& shard = ShardFor(hash);
  sync::MutexLock lock(shard.mu);
  Entry* e = FindLocked(shard, key, hash);
  if (e != nullptr && !e->tombstone) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    LYRIC_OBS_COUNT("solver_cache.hits");
    LYRIC_OBS_COUNT("solver_cache.sat_hits");
    return e->verdict;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  LYRIC_OBS_COUNT("solver_cache.misses");
  return std::nullopt;
}

void SolverCache::StoreSat(const Conjunction& c, bool sat) {
  if (!enabled() || CacheFault()) return;
  Entry entry;
  entry.key = Key{Kind::kSat, CanonicalLevel::kSyntactic, c, Dnf()};
  entry.hash = BucketHash(entry.key);
  entry.verdict = sat;
  StoreEntry(std::move(entry));
}

std::optional<Conjunction> SolverCache::LookupCanonical(
    const Conjunction& c, CanonicalLevel level) {
  if (!enabled() || CacheFault()) return std::nullopt;
  Key key{Kind::kCanonical, level, c, Dnf()};
  size_t hash = BucketHash(key);
  Shard& shard = ShardFor(hash);
  sync::MutexLock lock(shard.mu);
  Entry* e = FindLocked(shard, key, hash);
  if (e != nullptr && !e->tombstone) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    LYRIC_OBS_COUNT("solver_cache.hits");
    LYRIC_OBS_COUNT("solver_cache.canonical_hits");
    return e->canonical;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  LYRIC_OBS_COUNT("solver_cache.misses");
  return std::nullopt;
}

void SolverCache::StoreCanonical(const Conjunction& c, CanonicalLevel level,
                                 const Conjunction& result) {
  if (!enabled() || CacheFault()) return;
  Entry entry;
  entry.key = Key{Kind::kCanonical, level, c, Dnf()};
  entry.hash = BucketHash(entry.key);
  entry.canonical = result;
  StoreEntry(std::move(entry));
}

std::optional<bool> SolverCache::LookupEntails(const Conjunction& lhs,
                                               const Dnf& rhs) {
  if (!enabled() || CacheFault()) return std::nullopt;
  Key key{Kind::kEntails, CanonicalLevel::kSyntactic, lhs, rhs};
  size_t hash = BucketHash(key);
  Shard& shard = ShardFor(hash);
  sync::MutexLock lock(shard.mu);
  Entry* e = FindLocked(shard, key, hash);
  if (e != nullptr && !e->tombstone) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    LYRIC_OBS_COUNT("solver_cache.hits");
    LYRIC_OBS_COUNT("solver_cache.entailment_hits");
    return e->verdict;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  LYRIC_OBS_COUNT("solver_cache.misses");
  return std::nullopt;
}

void SolverCache::StoreEntails(const Conjunction& lhs, const Dnf& rhs,
                               bool holds) {
  if (!enabled() || CacheFault()) return;
  Entry entry;
  entry.key = Key{Kind::kEntails, CanonicalLevel::kSyntactic, lhs, rhs};
  entry.hash = BucketHash(entry.key);
  entry.verdict = holds;
  StoreEntry(std::move(entry));
}

}  // namespace lyric
