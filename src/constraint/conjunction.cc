#include "constraint/conjunction.h"

#include <algorithm>

namespace lyric {

Conjunction Conjunction::False() {
  Conjunction out;
  // 1 <= 0.
  out.atoms_.push_back(
      LinearConstraint(LinearExpr::Constant(Rational(1)), RelOp::kLe));
  return out;
}

void Conjunction::Add(const LinearConstraint& atom) {
  switch (atom.ConstantTruth()) {
    case Truth::kTrue:
      return;
    case Truth::kFalse:
      *this = False();
      return;
    case Truth::kUnknown:
      break;
  }
  if (HasConstantFalse()) return;  // Already FALSE; stay collapsed.
  atoms_.push_back(atom);
}

void Conjunction::AddAll(const Conjunction& o) {
  for (const LinearConstraint& atom : o.atoms_) Add(atom);
}

bool Conjunction::HasConstantFalse() const {
  for (const LinearConstraint& atom : atoms_) {
    if (atom.ConstantTruth() == Truth::kFalse) return true;
  }
  return false;
}

bool Conjunction::HasDisequality() const {
  for (const LinearConstraint& atom : atoms_) {
    if (atom.IsDisequality()) return true;
  }
  return false;
}

Conjunction Conjunction::Conjoin(const Conjunction& o) const {
  Conjunction out = *this;
  out.AddAll(o);
  return out;
}

VarSet Conjunction::FreeVars() const {
  VarSet out;
  CollectVars(&out);
  return out;
}

void Conjunction::CollectVars(VarSet* out) const {
  for (const LinearConstraint& atom : atoms_) atom.CollectVars(out);
}

Conjunction Conjunction::Substitute(VarId var,
                                    const LinearExpr& replacement) const {
  Conjunction out;
  for (const LinearConstraint& atom : atoms_) {
    out.Add(atom.Substitute(var, replacement));
  }
  return out;
}

Conjunction Conjunction::Rename(const std::map<VarId, VarId>& renaming) const {
  Conjunction out;
  for (const LinearConstraint& atom : atoms_) {
    out.Add(atom.Rename(renaming));
  }
  return out;
}

Result<bool> Conjunction::Eval(const Assignment& assignment) const {
  for (const LinearConstraint& atom : atoms_) {
    LYRIC_ASSIGN_OR_RETURN(bool holds, atom.Eval(assignment));
    if (!holds) return false;
  }
  return true;
}

void Conjunction::SortAndDedupe() {
  if (HasConstantFalse()) {
    *this = False();
    return;
  }
  std::sort(atoms_.begin(), atoms_.end());
  atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
}

int Conjunction::Compare(const Conjunction& o) const {
  size_t n = std::min(atoms_.size(), o.atoms_.size());
  for (size_t i = 0; i < n; ++i) {
    int c = atoms_[i].Compare(o.atoms_[i]);
    if (c != 0) return c;
  }
  if (atoms_.size() != o.atoms_.size()) {
    return atoms_.size() < o.atoms_.size() ? -1 : 1;
  }
  return 0;
}

std::string Conjunction::ToString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " and ";
    out += atoms_[i].ToString();
  }
  return out;
}

size_t Conjunction::Hash() const {
  size_t h = 0x12345;
  for (const LinearConstraint& atom : atoms_) {
    h ^= atom.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace lyric
