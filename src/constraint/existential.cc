#include "constraint/existential.h"

#include "constraint/entailment.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/simplex.h"

namespace lyric {

ExistentialConjunction::ExistentialConjunction(Conjunction body, VarSet bound)
    : body_(std::move(body)) {
  VarSet in_body = body_.FreeVars();
  for (VarId v : bound) {
    if (in_body.count(v)) bound_.insert(v);
  }
}

VarSet ExistentialConjunction::FreeVars() const {
  VarSet out;
  for (VarId v : body_.FreeVars()) {
    if (!bound_.count(v)) out.insert(v);
  }
  return out;
}

ExistentialConjunction ExistentialConjunction::FreshenBound() const {
  if (bound_.empty()) return *this;
  std::map<VarId, VarId> renaming;
  VarSet new_bound;
  for (VarId v : bound_) {
    VarId fresh = Variable::Fresh(Variable::Name(v));
    renaming[v] = fresh;
    new_bound.insert(fresh);
  }
  ExistentialConjunction out;
  out.body_ = body_.Rename(renaming);
  out.bound_ = std::move(new_bound);
  return out;
}

ExistentialConjunction ExistentialConjunction::Conjoin(
    const ExistentialConjunction& o) const {
  // exists y . A  and  exists z . B  ==  exists y,z . (A and B) provided
  // y is not free in B and z not free in A; freshening guarantees it.
  ExistentialConjunction a = *this;
  ExistentialConjunction b = o;
  // Freshen only when collisions are possible.
  VarSet a_all = a.AllVars();
  VarSet b_all = b.AllVars();
  bool collide = false;
  for (VarId v : a.bound_) {
    if (b_all.count(v)) collide = true;
  }
  for (VarId v : b.bound_) {
    if (a_all.count(v)) collide = true;
  }
  if (collide) {
    a = a.FreshenBound();
    b = b.FreshenBound();
  }
  ExistentialConjunction out;
  out.body_ = a.body_.Conjoin(b.body_);
  out.bound_ = a.bound_;
  for (VarId v : b.bound_) out.bound_.insert(v);
  return out;
}

ExistentialConjunction ExistentialConjunction::Project(
    const VarSet& keep) const {
  ExistentialConjunction out = *this;
  for (VarId v : FreeVars()) {
    if (!keep.count(v)) out.bound_.insert(v);
  }
  return out;
}

ExistentialConjunction ExistentialConjunction::RenameFree(
    const std::map<VarId, VarId>& renaming) const {
  ExistentialConjunction cur = *this;
  // Avoid capture: if a renaming target is a bound variable, freshen.
  for (const auto& [from, to] : renaming) {
    (void)from;
    if (cur.bound_.count(to)) {
      cur = cur.FreshenBound();
      break;
    }
  }
  // Restrict the renaming to free variables.
  std::map<VarId, VarId> free_renaming;
  VarSet free = cur.FreeVars();
  for (const auto& [from, to] : renaming) {
    if (free.count(from)) free_renaming[from] = to;
  }
  ExistentialConjunction out;
  out.body_ = cur.body_.Rename(free_renaming);
  out.bound_ = cur.bound_;
  return out;
}

ExistentialConjunction ExistentialConjunction::SubstituteFree(
    VarId var, const LinearExpr& replacement) const {
  ExistentialConjunction cur = *this;
  if (cur.bound_.count(var)) return cur;  // Not free; nothing to do.
  // Avoid capture of replacement variables by the quantifier.
  for (const auto& [v, coeff] : replacement.terms()) {
    (void)coeff;
    if (cur.bound_.count(v)) {
      cur = cur.FreshenBound();
      break;
    }
  }
  ExistentialConjunction out;
  out.body_ = cur.body_.Substitute(var, replacement);
  out.bound_ = cur.bound_;
  return out;
}

Result<bool> ExistentialConjunction::Satisfiable() const {
  return Simplex::IsSatisfiable(body_);
}

Result<bool> ExistentialConjunction::EvalFree(
    const Assignment& assignment) const {
  Conjunction grounded = body_;
  for (VarId v : FreeVars()) {
    auto it = assignment.find(v);
    if (it == assignment.end()) {
      return Status::InvalidArgument("EvalFree: unassigned free variable '" +
                                     Variable::Name(v) + "'");
    }
    grounded = grounded.Substitute(v, LinearExpr::Constant(it->second));
  }
  return Simplex::IsSatisfiable(grounded);
}

Result<Conjunction> ExistentialConjunction::ToConjunction() const {
  if (bound_.empty()) return body_;
  // Disequalities over bound variables force a disjunctive split; that is
  // a family boundary the caller must handle via DisjunctiveExistential.
  return FourierMotzkin::ProjectOnto(body_, FreeVars());
}

std::string ExistentialConjunction::ToString() const {
  if (bound_.empty()) return body_.ToString();
  std::string out = "exists ";
  bool first = true;
  for (VarId v : bound_) {
    if (!first) out += ", ";
    first = false;
    out += Variable::Name(v);
  }
  out += " . (" + body_.ToString() + ")";
  return out;
}

// ---------------------------------------------------------------------------
// DisjunctiveExistential
// ---------------------------------------------------------------------------

DisjunctiveExistential DisjunctiveExistential::FromDnf(const Dnf& d) {
  DisjunctiveExistential out;
  for (const Conjunction& c : d.disjuncts()) {
    out.AddDisjunct(ExistentialConjunction(c));
  }
  return out;
}

void DisjunctiveExistential::AddDisjunct(ExistentialConjunction ec) {
  if (ec.body().HasConstantFalse()) return;
  disjuncts_.push_back(std::move(ec));
}

DisjunctiveExistential DisjunctiveExistential::Or(
    const DisjunctiveExistential& o) const {
  DisjunctiveExistential out = *this;
  for (const ExistentialConjunction& ec : o.disjuncts_) {
    out.AddDisjunct(ec);
  }
  return out;
}

DisjunctiveExistential DisjunctiveExistential::And(
    const DisjunctiveExistential& o) const {
  DisjunctiveExistential out;
  for (const ExistentialConjunction& a : disjuncts_) {
    for (const ExistentialConjunction& b : o.disjuncts_) {
      out.AddDisjunct(a.Conjoin(b));
    }
  }
  return out;
}

DisjunctiveExistential DisjunctiveExistential::Project(
    const VarSet& keep) const {
  DisjunctiveExistential out;
  for (const ExistentialConjunction& ec : disjuncts_) {
    out.AddDisjunct(ec.Project(keep));
  }
  return out;
}

DisjunctiveExistential DisjunctiveExistential::RenameFree(
    const std::map<VarId, VarId>& renaming) const {
  DisjunctiveExistential out;
  for (const ExistentialConjunction& ec : disjuncts_) {
    out.AddDisjunct(ec.RenameFree(renaming));
  }
  return out;
}

DisjunctiveExistential DisjunctiveExistential::SubstituteFree(
    VarId var, const LinearExpr& replacement) const {
  DisjunctiveExistential out;
  for (const ExistentialConjunction& ec : disjuncts_) {
    out.AddDisjunct(ec.SubstituteFree(var, replacement));
  }
  return out;
}

VarSet DisjunctiveExistential::FreeVars() const {
  VarSet out;
  for (const ExistentialConjunction& ec : disjuncts_) {
    for (VarId v : ec.FreeVars()) out.insert(v);
  }
  return out;
}

Result<bool> DisjunctiveExistential::Satisfiable() const {
  for (const ExistentialConjunction& ec : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(bool sat, ec.Satisfiable());
    if (sat) return true;
  }
  return false;
}

Result<std::optional<Assignment>> DisjunctiveExistential::FindPoint() const {
  for (const ExistentialConjunction& ec : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(std::optional<Assignment> pt,
                           Simplex::FindPoint(ec.body()));
    if (pt.has_value()) {
      // Restrict to the free variables.
      Assignment out;
      for (VarId v : ec.FreeVars()) {
        auto it = pt->find(v);
        out[v] = it == pt->end() ? Rational(0) : it->second;
      }
      return std::optional<Assignment>(std::move(out));
    }
  }
  return std::optional<Assignment>();
}

Result<bool> DisjunctiveExistential::EvalFree(
    const Assignment& assignment) const {
  for (const ExistentialConjunction& ec : disjuncts_) {
    LYRIC_ASSIGN_OR_RETURN(bool holds, ec.EvalFree(assignment));
    if (holds) return true;
  }
  return false;
}

Result<Dnf> DisjunctiveExistential::ToDnf() const {
  Dnf out;
  for (const ExistentialConjunction& ec : disjuncts_) {
    if (ec.bound().empty()) {
      out.AddDisjunct(ec.body());
      continue;
    }
    // Disequalities over bound variables: split first, then eliminate.
    bool diseq_on_bound = false;
    for (const LinearConstraint& atom : ec.body().atoms()) {
      if (!atom.IsDisequality()) continue;
      for (const auto& [v, coeff] : atom.lhs().terms()) {
        (void)coeff;
        if (ec.bound().count(v)) diseq_on_bound = true;
      }
    }
    if (diseq_on_bound) {
      Dnf split = Dnf(ec.body()).SplitDisequalities();
      LYRIC_ASSIGN_OR_RETURN(Dnf projected,
                             split.ProjectOnto(ec.FreeVars()));
      out = out.Or(projected);
    } else {
      LYRIC_ASSIGN_OR_RETURN(Conjunction projected, ec.ToConjunction());
      out.AddDisjunct(std::move(projected));
    }
  }
  return out;
}

Result<bool> DisjunctiveExistential::Entails(
    const DisjunctiveExistential& o) const {
  // Right side: quantifier-free DNF (eliminates on demand).
  LYRIC_ASSIGN_OR_RETURN(Dnf rhs, o.ToDnf());
  // Left side: (exists y . C) |= psi  iff  C |= psi when y does not occur
  // in psi; freshening the bound variables guarantees that.
  for (const ExistentialConjunction& ec : disjuncts_) {
    ExistentialConjunction fresh = ec.FreshenBound();
    LYRIC_ASSIGN_OR_RETURN(bool ok,
                           Entailment::ConjunctionEntails(fresh.body(), rhs));
    if (!ok) return false;
  }
  return true;
}

std::string DisjunctiveExistential::ToString() const {
  if (disjuncts_.empty()) return "false";
  if (disjuncts_.size() == 1) return disjuncts_[0].ToString();
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += " or ";
    out += "(" + disjuncts_[i].ToString() + ")";
  }
  return out;
}

}  // namespace lyric
