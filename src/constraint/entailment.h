// The |= predicate of LyriC (§4.2): logical implication between
// disjunctive constraint formulas.
//
//   ((x1..xn) | phi) |= ((y1..ym) | psi)
//
// holds iff for every real instantiation of all the variables, phi implies
// psi. We decide it by refutation: phi |= psi iff phi and not(psi) is
// unsatisfiable. not(psi) is a CNF of negated-atom literals; a DPLL-style
// case split with simplex feasibility pruning explores it. Exponential in
// the number of disjuncts of psi in the worst case (the problem is co-NP
// hard for disjunctive constraints, which is exactly why the paper's
// canonical forms avoid full redundancy detection), but the pruning makes
// typical spatial queries cheap.

#ifndef LYRIC_CONSTRAINT_ENTAILMENT_H_
#define LYRIC_CONSTRAINT_ENTAILMENT_H_

#include "constraint/dnf.h"

namespace lyric {

/// Implication and equivalence tests over disjunctive constraints.
class Entailment {
 public:
  /// Does every point of `lhs` satisfy `rhs`?
  static Result<bool> Entails(const Dnf& lhs, const Dnf& rhs);

  /// Conjunction-vs-DNF case (the inner loop of Entails).
  static Result<bool> ConjunctionEntails(const Conjunction& lhs,
                                         const Dnf& rhs);

  /// Mutual entailment.
  static Result<bool> Equivalent(const Dnf& a, const Dnf& b);

  /// The paper's spatial predicates, expressed through entailment and
  /// conjunction (§1.1: "containment is expressed by implication,
  /// intersection by conjunction").
  static Result<bool> Contains(const Dnf& outer, const Dnf& inner) {
    return Entails(inner, outer);
  }
  static Result<bool> Overlaps(const Dnf& a, const Dnf& b) {
    return a.And(b).Satisfiable();
  }
  static Result<bool> Disjoint(const Dnf& a, const Dnf& b);
};

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_ENTAILMENT_H_
