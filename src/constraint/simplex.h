// Exact-rational linear programming over conjunctions.
//
// This is the workhorse behind four language features of LyriC:
//   * the WHERE-clause satisfiability predicate (§4.2),
//   * the entailment predicate |= (via refutation),
//   * MAX/MIN ... SUBJECT TO and MAX_POINT/MIN_POINT (§4.2),
//   * projection of a conjunction onto <= 1 variable (the "all but one
//     free variables eliminated" restricted quantifier elimination of
//     §3.1, computed as an LP interval rather than iterated
//     Fourier-Motzkin).
//
// Implementation: textbook two-phase primal simplex with Bland's rule on a
// dense tableau of exact rationals. Free variables are split into
// positive/negative parts; strict inequalities are handled with an
// auxiliary epsilon variable; disequalities via the convexity argument
// (a polyhedron is inside a finite union of hyperplanes iff it is inside
// one of them).

#ifndef LYRIC_CONSTRAINT_SIMPLEX_H_
#define LYRIC_CONSTRAINT_SIMPLEX_H_

#include <optional>
#include <string_view>

#include "constraint/conjunction.h"

namespace lyric {

/// Outcome class of an optimization call.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

const char* LpStatusToString(LpStatus status);
/// Inverse of LpStatusToString; nullopt for an unknown string.
std::optional<LpStatus> LpStatusFromString(std::string_view s);

/// Result of Maximize/Minimize.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Optimal value (supremum/infimum over the closure) when kOptimal.
  Rational value;
  /// True when the optimum is attained by a point of the (possibly open)
  /// feasible set itself; false when strict atoms or disequalities make it
  /// a supremum only.
  bool attained = false;
  /// A maximizing/minimizing point of the closure when kOptimal; when
  /// `attained`, the point satisfies the original conjunction.
  Assignment point;
};

/// Exact LP interface over conjunctions of linear atoms.
class Simplex {
 public:
  /// Satisfiability of a conjunction over the reals. Handles =, <=, <, !=.
  static Result<bool> IsSatisfiable(const Conjunction& c);

  /// A witness point when satisfiable; nullopt when unsatisfiable.
  static Result<std::optional<Assignment>> FindPoint(const Conjunction& c);

  /// Maximizes `objective` subject to `c` (over the closure of the solution
  /// set; see LpSolution::attained).
  static Result<LpSolution> Maximize(const LinearExpr& objective,
                                     const Conjunction& c);
  /// Minimizes `objective` subject to `c`.
  static Result<LpSolution> Minimize(const LinearExpr& objective,
                                     const Conjunction& c);

  /// True iff every point of `c` satisfies `expr = 0` (used for the
  /// disequality convexity test and for entailment of equalities).
  static Result<bool> EntailsZero(const Conjunction& c,
                                  const LinearExpr& expr);
};

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_SIMPLEX_H_
