#include "constraint/linear_constraint.h"

#include <cassert>

namespace lyric {

const char* RelOpToString(RelOp op) {
  switch (op) {
    case RelOp::kEq:
      return "=";
    case RelOp::kLe:
      return "<=";
    case RelOp::kLt:
      return "<";
    case RelOp::kNeq:
      return "!=";
  }
  return "?";
}

LinearConstraint::LinearConstraint(LinearExpr lhs, RelOp op)
    : lhs_(std::move(lhs)), op_(op) {
  Normalize();
}

void LinearConstraint::Normalize() {
  if (lhs_.terms().empty()) return;
  // Scale so the gcd of numerators over the lcm of denominators is 1:
  // divide by |first coefficient|, then clear denominators, then divide by
  // the integer gcd. Simpler equivalent: multiply by the lcm of all
  // denominators and divide by the gcd of all numerators.
  BigInt den_lcm(1);
  for (const auto& [var, coeff] : lhs_.terms()) {
    (void)var;
    BigInt g = BigInt::Gcd(den_lcm, coeff.den());
    den_lcm = den_lcm / g * coeff.den();
  }
  {
    BigInt g = BigInt::Gcd(den_lcm, lhs_.constant().den());
    den_lcm = den_lcm / g * lhs_.constant().den();
  }
  lhs_ = lhs_.Scale(Rational(den_lcm, BigInt(1)));
  BigInt num_gcd(0);
  for (const auto& [var, coeff] : lhs_.terms()) {
    (void)var;
    num_gcd = BigInt::Gcd(num_gcd, coeff.num());
  }
  // Note: the constant is deliberately excluded from the gcd so that e.g.
  // 2x <= 1 stays distinct from x <= 1/2 only in scaling; including it
  // would also be fine. We include it when it keeps integrality:
  if (!lhs_.constant().IsZero()) {
    num_gcd = BigInt::Gcd(num_gcd, lhs_.constant().num());
  }
  if (num_gcd > BigInt(1)) {
    lhs_ = lhs_.Scale(Rational(BigInt(1), num_gcd));
  }
  // For = and !=, both sign forms are equivalent; fix the sign of the
  // leading (lowest-id) coefficient to positive.
  if (op_ == RelOp::kEq || op_ == RelOp::kNeq) {
    if (!lhs_.terms().empty() && lhs_.terms().begin()->second.IsNegative()) {
      lhs_ = -lhs_;
    }
  }
}

Truth LinearConstraint::ConstantTruth() const {
  if (!lhs_.IsConstant()) return Truth::kUnknown;
  int sign = lhs_.constant().Sign();
  bool holds = false;
  switch (op_) {
    case RelOp::kEq:
      holds = sign == 0;
      break;
    case RelOp::kLe:
      holds = sign <= 0;
      break;
    case RelOp::kLt:
      holds = sign < 0;
      break;
    case RelOp::kNeq:
      holds = sign != 0;
      break;
  }
  return holds ? Truth::kTrue : Truth::kFalse;
}

Result<bool> LinearConstraint::Eval(const Assignment& assignment) const {
  LYRIC_ASSIGN_OR_RETURN(Rational v, lhs_.Eval(assignment));
  switch (op_) {
    case RelOp::kEq:
      return v.IsZero();
    case RelOp::kLe:
      return v.Sign() <= 0;
    case RelOp::kLt:
      return v.Sign() < 0;
    case RelOp::kNeq:
      return !v.IsZero();
  }
  return Status::Internal("bad relop");
}

LinearConstraint LinearConstraint::Substitute(
    VarId var, const LinearExpr& replacement) const {
  return LinearConstraint(lhs_.Substitute(var, replacement), op_);
}

LinearConstraint LinearConstraint::Rename(
    const std::map<VarId, VarId>& renaming) const {
  return LinearConstraint(lhs_.Rename(renaming), op_);
}

std::vector<LinearConstraint> LinearConstraint::Negate() const {
  switch (op_) {
    case RelOp::kEq:
      // not(e = 0)  ==  e < 0  or  -e < 0.
      return {LinearConstraint(lhs_, RelOp::kLt),
              LinearConstraint(-lhs_, RelOp::kLt)};
    case RelOp::kLe:
      // not(e <= 0)  ==  -e < 0.
      return {LinearConstraint(-lhs_, RelOp::kLt)};
    case RelOp::kLt:
      // not(e < 0)  ==  -e <= 0.
      return {LinearConstraint(-lhs_, RelOp::kLe)};
    case RelOp::kNeq:
      return {LinearConstraint(lhs_, RelOp::kEq)};
  }
  return {};
}

LinearConstraint LinearConstraint::Closure() const {
  assert(op_ != RelOp::kNeq && "closure of a disequality");
  if (op_ == RelOp::kLt) return LinearConstraint(lhs_, RelOp::kLe);
  return *this;
}

int LinearConstraint::Compare(const LinearConstraint& o) const {
  if (op_ != o.op_) {
    return static_cast<int>(op_) < static_cast<int>(o.op_) ? -1 : 1;
  }
  return lhs_.Compare(o.lhs_);
}

std::string LinearConstraint::ToString() const {
  // Move the constant to the right-hand side for readability.
  LinearExpr vars_only = lhs_;
  Rational c = lhs_.constant();
  vars_only.AddConstant(-c);
  return vars_only.ToString() + " " + RelOpToString(op_) + " " +
         (-c).ToString();
}

size_t LinearConstraint::Hash() const {
  return lhs_.Hash() * 4 + static_cast<size_t>(op_);
}

}  // namespace lyric
