// The four interrelated constraint families of §3.1.
//
// Engineered inclusion lattice (paper: "existential conjunctive and
// disjunctive constraints each include conjunctive constraints;
// disjunctive existential constraints include all the others"):
//
//         disjunctive existential
//           /                  |
//    disjunctive        existential conjunctive
//           |                  /
//             conjunctive
//
// The family of a CST object determines which operations keep its
// representation polynomial: conjunctive/disjunctive permit only
// *restricted* projection (performed eagerly), while the existential
// families absorb any projection by marking variables bound.

#ifndef LYRIC_CONSTRAINT_FAMILY_H_
#define LYRIC_CONSTRAINT_FAMILY_H_

namespace lyric {

/// The constraint family of a CST object.
enum class ConstraintFamily {
  kConjunctive,
  kExistentialConjunctive,
  kDisjunctive,
  kDisjunctiveExistential,
};

const char* ConstraintFamilyToString(ConstraintFamily f);

/// Least upper bound in the inclusion lattice.
ConstraintFamily FamilyJoin(ConstraintFamily a, ConstraintFamily b);

/// Whether `sub` is included in `super` in the lattice.
bool FamilyIncluded(ConstraintFamily sub, ConstraintFamily super);

/// Whether the family carries existential quantifiers.
inline bool FamilyHasExistentials(ConstraintFamily f) {
  return f == ConstraintFamily::kExistentialConjunctive ||
         f == ConstraintFamily::kDisjunctiveExistential;
}

/// Whether the family permits more than one disjunct.
inline bool FamilyHasDisjunction(ConstraintFamily f) {
  return f == ConstraintFamily::kDisjunctive ||
         f == ConstraintFamily::kDisjunctiveExistential;
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_FAMILY_H_
