// Atomic linear arithmetic constraints: expr relop 0.
//
// The paper (§3.1) defines a linear arithmetic constraint as
//   r1*x1 + ... + rm*xm  relop  r,   relop in {=, <=, <, >=, >, !=}.
// We normalize to `lhs relop 0` with relop in {=, <=, <, !=}: >= and > flip
// by negating the left-hand side. Each atom is further scaled so that the
// coefficient gcd is 1 and (for = and !=, whose two sign forms are
// equivalent) the leading coefficient is positive — making structural
// equality usable for the paper's "deletion of syntactic duplicates"
// canonical-form step.

#ifndef LYRIC_CONSTRAINT_LINEAR_CONSTRAINT_H_
#define LYRIC_CONSTRAINT_LINEAR_CONSTRAINT_H_

#include <ostream>
#include <string>
#include <vector>

#include "constraint/linear_expr.h"
#include "util/result.h"

namespace lyric {

/// Relational operator of a normalized atom (`lhs relop 0`).
enum class RelOp {
  kEq,   // lhs == 0
  kLe,   // lhs <= 0
  kLt,   // lhs <  0
  kNeq,  // lhs != 0
};

/// Three-valued truth of an atom with no free variables.
enum class Truth { kTrue, kFalse, kUnknown };

const char* RelOpToString(RelOp op);

/// A normalized atomic linear constraint.
class LinearConstraint {
 public:
  /// Builds `lhs op rhs` and normalizes. Accepts any of the six paper
  /// relops via the factory helpers below.
  LinearConstraint(LinearExpr lhs, RelOp op);

  static LinearConstraint Eq(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(lhs - rhs, RelOp::kEq);
  }
  static LinearConstraint Le(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(lhs - rhs, RelOp::kLe);
  }
  static LinearConstraint Lt(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(lhs - rhs, RelOp::kLt);
  }
  static LinearConstraint Ge(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(rhs - lhs, RelOp::kLe);
  }
  static LinearConstraint Gt(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(rhs - lhs, RelOp::kLt);
  }
  static LinearConstraint Neq(const LinearExpr& lhs, const LinearExpr& rhs) {
    return LinearConstraint(lhs - rhs, RelOp::kNeq);
  }

  const LinearExpr& lhs() const { return lhs_; }
  RelOp op() const { return op_; }

  bool IsStrict() const { return op_ == RelOp::kLt; }
  bool IsEquality() const { return op_ == RelOp::kEq; }
  bool IsDisequality() const { return op_ == RelOp::kNeq; }

  /// If the atom has no free variables, its truth value; kUnknown otherwise.
  Truth ConstantTruth() const;

  /// Variables occurring in the atom.
  VarSet FreeVars() const { return lhs_.FreeVars(); }
  void CollectVars(VarSet* out) const { lhs_.CollectVars(out); }

  /// Truth under a total assignment of the atom's variables.
  Result<bool> Eval(const Assignment& assignment) const;

  /// Substitutes an expression for a variable and re-normalizes.
  LinearConstraint Substitute(VarId var, const LinearExpr& replacement) const;
  /// Renames variables.
  LinearConstraint Rename(const std::map<VarId, VarId>& renaming) const;

  /// The negation, as a disjunction of atoms (negating an equality yields
  /// two strict inequalities; every other relop negates to a single atom).
  std::vector<LinearConstraint> Negate() const;

  /// The non-strict closure: < becomes <=; = and <= unchanged. Must not be
  /// called on a disequality (asserts).
  LinearConstraint Closure() const;

  bool operator==(const LinearConstraint& o) const {
    return op_ == o.op_ && lhs_ == o.lhs_;
  }
  bool operator!=(const LinearConstraint& o) const { return !(*this == o); }

  /// Total order for canonical sorting.
  int Compare(const LinearConstraint& o) const;
  bool operator<(const LinearConstraint& o) const { return Compare(o) < 0; }

  /// Renders e.g. "2*x + 3*y <= 5" (constant moved to the right).
  std::string ToString() const;

  size_t Hash() const;

 private:
  void Normalize();

  LinearExpr lhs_;
  RelOp op_;
};

inline std::ostream& operator<<(std::ostream& os, const LinearConstraint& c) {
  return os << c.ToString();
}

}  // namespace lyric

#endif  // LYRIC_CONSTRAINT_LINEAR_CONSTRAINT_H_
