#include "office/office_db.h"

namespace lyric {
namespace office {

namespace {

LinearExpr V(const char* name) {
  return LinearExpr::Var(Variable::Intern(name));
}
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

std::vector<VarId> Vars(std::initializer_list<const char*> names) {
  std::vector<VarId> out;
  for (const char* n : names) out.push_back(Variable::Intern(n));
  return out;
}

}  // namespace

Status BuildOfficeSchema(Schema* schema) {
  {
    ClassDef office_object;
    office_object.name = "Office_Object";
    office_object.interface_vars = {"x", "y"};
    office_object.attributes = {
        {"name", false, kStringClass, {}},
        {"color", false, kStringClass, {}},
        {"extent", false, kCstClass, {"w", "z"}},
        {"translation", false, kCstClass, {"w", "z", "x", "y", "u", "v"}},
    };
    LYRIC_RETURN_NOT_OK(schema->AddClass(office_object));
  }
  {
    ClassDef drawer;
    drawer.name = "Drawer";
    drawer.interface_vars = {"x", "y"};
    drawer.attributes = {
        {"color", false, kStringClass, {}},
        {"extent", false, kCstClass, {"w", "z"}},
        {"translation", false, kCstClass, {"w", "z", "x", "y", "u", "v"}},
    };
    LYRIC_RETURN_NOT_OK(schema->AddClass(drawer));
  }
  {
    ClassDef desk;
    desk.name = "Desk";
    desk.parents = {"Office_Object"};
    desk.attributes = {
        {"drawer_center", false, kCstClass, {"p", "q"}},
        {"drawer", false, "Drawer", {"p", "q"}},
    };
    LYRIC_RETURN_NOT_OK(schema->AddClass(desk));
  }
  {
    ClassDef cabinet;
    cabinet.name = "File_Cabinet";
    cabinet.parents = {"Office_Object"};
    cabinet.attributes = {
        {"drawer_center", true, kCstClass, {"p1", "q1"}},
        {"drawer", true, "Drawer", {"p1", "q1"}},
    };
    LYRIC_RETURN_NOT_OK(schema->AddClass(cabinet));
  }
  {
    ClassDef in_room;
    in_room.name = "Object_in_Room";
    in_room.attributes = {
        {"cat_number", false, kStringClass, {}},
        {"inv_number", false, kStringClass, {}},
        {"location", false, kCstClass, {"x", "y"}},
        {"catalog_object", false, "Office_Object", {"x", "y"}},
    };
    LYRIC_RETURN_NOT_OK(schema->AddClass(in_room));
  }
  // Region: a user subclass of CST(2) used by the §4.1 view example.
  {
    ClassDef region;
    region.name = "Region";
    region.parents = {CstClassName(2)};
    LYRIC_RETURN_NOT_OK(schema->AddClass(region));
  }
  return Status::OK();
}

CstObject LocationAt(int64_t x, int64_t y) {
  Conjunction c;
  c.Add(LinearConstraint::Eq(V("x"), C(x)));
  c.Add(LinearConstraint::Eq(V("y"), C(y)));
  return CstObject::FromConjunction(Vars({"x", "y"}), c).value();
}

CstObject BoxExtent(int64_t half_w, int64_t half_z) {
  Conjunction c;
  c.Add(LinearConstraint::Ge(V("w"), C(-half_w)));
  c.Add(LinearConstraint::Le(V("w"), C(half_w)));
  c.Add(LinearConstraint::Ge(V("z"), C(-half_z)));
  c.Add(LinearConstraint::Le(V("z"), C(half_z)));
  return CstObject::FromConjunction(Vars({"w", "z"}), c).value();
}

CstObject StandardTranslation() {
  Conjunction c;
  c.Add(LinearConstraint::Eq(V("u"), V("x") + V("w")));
  c.Add(LinearConstraint::Eq(V("v"), V("y") + V("z")));
  return CstObject::FromConjunction(Vars({"w", "z", "x", "y", "u", "v"}), c)
      .value();
}

CstObject StandardDrawerCenter() {
  Conjunction c;
  c.Add(LinearConstraint::Eq(V("p"), C(-2)));
  c.Add(LinearConstraint::Ge(V("q"), C(-2)));
  c.Add(LinearConstraint::Le(V("q"), C(0)));
  return CstObject::FromConjunction(Vars({"p", "q"}), c).value();
}

Result<OfficeIds> BuildOfficeDatabase(Database* db) {
  LYRIC_RETURN_NOT_OK(BuildOfficeSchema(&db->schema()));

  OfficeIds ids;
  ids.the_drawer = Oid::Symbol("std_drawer");
  ids.standard_desk = Oid::Symbol("standard_desk");
  ids.my_desk = Oid::Symbol("my_desk");

  LYRIC_RETURN_NOT_OK(db->Insert(ids.the_drawer, "Drawer"));
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.the_drawer, "color",
                                       Value::Scalar(Oid::Str("red"))));
  LYRIC_RETURN_NOT_OK(
      db->SetCstAttribute(ids.the_drawer, "extent", BoxExtent(1, 1)).status());
  LYRIC_RETURN_NOT_OK(
      db->SetCstAttribute(ids.the_drawer, "translation", StandardTranslation())
          .status());

  LYRIC_RETURN_NOT_OK(db->Insert(ids.standard_desk, "Desk"));
  LYRIC_RETURN_NOT_OK(db->SetAttribute(
      ids.standard_desk, "name", Value::Scalar(Oid::Str("standard desk"))));
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.standard_desk, "color",
                                       Value::Scalar(Oid::Str("red"))));
  LYRIC_RETURN_NOT_OK(
      db->SetCstAttribute(ids.standard_desk, "extent", BoxExtent(4, 2))
          .status());
  LYRIC_RETURN_NOT_OK(db->SetCstAttribute(ids.standard_desk, "translation",
                                          StandardTranslation())
                          .status());
  LYRIC_RETURN_NOT_OK(db->SetCstAttribute(ids.standard_desk, "drawer_center",
                                          StandardDrawerCenter())
                          .status());
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.standard_desk, "drawer",
                                       Value::Scalar(ids.the_drawer)));

  LYRIC_RETURN_NOT_OK(db->Insert(ids.my_desk, "Object_in_Room"));
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.my_desk, "cat_number",
                                       Value::Scalar(Oid::Str("CAT-11"))));
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.my_desk, "inv_number",
                                       Value::Scalar(Oid::Str("22-354"))));
  LYRIC_RETURN_NOT_OK(
      db->SetCstAttribute(ids.my_desk, "location", LocationAt(6, 4))
          .status());
  LYRIC_RETURN_NOT_OK(db->SetAttribute(ids.my_desk, "catalog_object",
                                       Value::Scalar(ids.standard_desk)));
  return ids;
}

Status AddScaledDesks(Database* db, int num_desks, uint64_t seed,
                      bool share_catalog) {
  // Deterministic linear-congruential positions inside the 20 x 10 room.
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&state](uint64_t mod) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % mod;
  };
  Oid shared_catalog = Oid::Symbol("standard_desk");
  if (!db->HasObject(shared_catalog)) {
    share_catalog = false;
  }
  for (int i = 0; i < num_desks; ++i) {
    Oid catalog = shared_catalog;
    if (!share_catalog) {
      catalog = Oid::Func("catalog_desk", {Oid::Int(i)});
      LYRIC_RETURN_NOT_OK(db->Insert(catalog, "Desk"));
      LYRIC_RETURN_NOT_OK(db->SetAttribute(
          catalog, "name",
          Value::Scalar(Oid::Str("desk model " + std::to_string(i)))));
      LYRIC_RETURN_NOT_OK(db->SetAttribute(
          catalog, "color",
          Value::Scalar(Oid::Str(i % 3 == 0 ? "red" : "gray"))));
      LYRIC_RETURN_NOT_OK(db->SetCstAttribute(
                              catalog, "extent",
                              BoxExtent(2 + static_cast<int64_t>(next(3)),
                                        1 + static_cast<int64_t>(next(2))))
                              .status());
      LYRIC_RETURN_NOT_OK(
          db->SetCstAttribute(catalog, "translation", StandardTranslation())
              .status());
      LYRIC_RETURN_NOT_OK(db->SetCstAttribute(catalog, "drawer_center",
                                              StandardDrawerCenter())
                              .status());
      Oid drawer = Oid::Func("drawer_of", {Oid::Int(i)});
      LYRIC_RETURN_NOT_OK(db->Insert(drawer, "Drawer"));
      LYRIC_RETURN_NOT_OK(db->SetAttribute(drawer, "color",
                                           Value::Scalar(Oid::Str("gray"))));
      LYRIC_RETURN_NOT_OK(
          db->SetCstAttribute(drawer, "extent", BoxExtent(1, 1)).status());
      LYRIC_RETURN_NOT_OK(
          db->SetCstAttribute(drawer, "translation", StandardTranslation())
              .status());
      LYRIC_RETURN_NOT_OK(
          db->SetAttribute(catalog, "drawer", Value::Scalar(drawer)));
    }
    Oid obj = Oid::Func("desk_in_room", {Oid::Int(i), Oid::Int(
                                             static_cast<int64_t>(seed))});
    LYRIC_RETURN_NOT_OK(db->Insert(obj, "Object_in_Room"));
    LYRIC_RETURN_NOT_OK(db->SetAttribute(
        obj, "cat_number",
        Value::Scalar(Oid::Str("CAT-" + std::to_string(i % 7)))));
    LYRIC_RETURN_NOT_OK(db->SetAttribute(
        obj, "inv_number",
        Value::Scalar(Oid::Str("inv-" + std::to_string(i)))));
    int64_t x = 2 + static_cast<int64_t>(next(17));
    int64_t y = 2 + static_cast<int64_t>(next(7));
    LYRIC_RETURN_NOT_OK(
        db->SetCstAttribute(obj, "location", LocationAt(x, y)).status());
    LYRIC_RETURN_NOT_OK(
        db->SetAttribute(obj, "catalog_object", Value::Scalar(catalog)));
  }
  return Status::OK();
}

}  // namespace office
}  // namespace lyric
