// The paper's running example: the office (architectural) design database
// of Figures 1 and 2.
//
// Schema (Figure 1, IS-A dashed / composition solid):
//
//   Object_in_Room            -- an object placed in a room
//     cat_number  : string
//     inv_number  : string
//     location    : CST(x, y)       -- center position in room coordinates
//     catalog_object : Office_Object (x, y)
//   Office_Object (x, y)      -- a catalog object, local coordinates
//     name        : string
//     color       : string
//     extent      : CST(w, z)       -- shape in local coordinates
//     translation : CST(w, z, x, y, u, v)  -- local->room coordinate map
//   Desk IS-A Office_Object
//     drawer_center : CST(p, q)     -- line the drawer center moves along
//     drawer      : Drawer (p, q)
//   File_Cabinet IS-A Office_Object
//     drawer_center* : CST(p1, q1)  -- set-valued: one per drawer
//     drawer*     : Drawer (p1, q1)
//   Drawer (x, y)
//     color       : string
//     extent      : CST(w, z)
//     translation : CST(w, z, x, y, u, v)
//
// Instance (Figure 2 / §3.2): the room contains `my_desk` at (6, 4) whose
// catalog object is the red 'standard desk' with a centered drawer.

#ifndef LYRIC_OFFICE_OFFICE_DB_H_
#define LYRIC_OFFICE_OFFICE_DB_H_

#include <cstdint>

#include "object/database.h"

namespace lyric {
namespace office {

/// Oids of the Figure 2 instance.
struct OfficeIds {
  Oid my_desk;        // Object_in_Room
  Oid standard_desk;  // Desk (catalog object)
  Oid the_drawer;     // Drawer
};

/// Installs the Figure 1 classes into `schema`.
Status BuildOfficeSchema(Schema* schema);

/// Installs schema + the Figure 2 instance; returns its oids.
Result<OfficeIds> BuildOfficeDatabase(Database* db);

/// Helper constraint builders (exact to the §3.2 instance table).
CstObject LocationAt(int64_t x, int64_t y);
CstObject BoxExtent(int64_t half_w, int64_t half_z);
CstObject StandardTranslation();
CstObject StandardDrawerCenter();

/// Adds `num_desks` extra desks at deterministic pseudo-random positions
/// inside a 20 x 10 room (the paper's assumed room size); used to scale
/// the database for the data-complexity benches. Desk i is the
/// Object_in_Room `desk_i(seed)` referencing a shared or per-desk catalog
/// object depending on `share_catalog`.
Status AddScaledDesks(Database* db, int num_desks, uint64_t seed,
                      bool share_catalog = true);

}  // namespace office
}  // namespace lyric

#endif  // LYRIC_OFFICE_OFFICE_DB_H_
