// BufferPool: an LRU page cache with pin/unpin between the B-tree and
// the pager, built on the ranked sync layer (rank kBufferPool, see
// docs/CONCURRENCY.md).
//
// Frames carry two staleness flags that implement the engine's no-steal
// redo-only crash protocol (docs/STORAGE.md):
//
//   dirty     the frame differs from the data file; checkpoint flushes
//             it (or eviction does, once it is logged).
//   unlogged  the frame holds mutations not yet in the WAL. Unlogged
//             frames are NEVER written to the data file and never
//             evicted: if the process dies, the data file still holds
//             only durably committed bytes, and recovery replays the
//             WAL on top. Commit snapshots the unlogged frames into the
//             WAL and clears the flag; only then may eviction write
//             them (the full image in the WAL repairs any torn write).
//
// Eviction picks the least-recently-used unpinned, logged frame; if all
// frames are pinned or unlogged, the pool temporarily exceeds its
// capacity (counted in storage.pool.overflows) rather than fail — a
// page fetch must not error because a large transaction is in flight.
//
// Pins are handed out as RAII PageRefs. The pool lock guards only the
// frame table and LRU bookkeeping; the page bytes themselves are
// accessed while pinned under the single-writer engine lock (rank
// kStorageEngine), which PagedStore holds across every structural
// operation.

#ifndef LYRIC_STORAGE_BUFFER_POOL_H_
#define LYRIC_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "storage/pager.h"
#include "util/sync.h"

namespace lyric {
namespace storage {

class BufferPool;

/// A pinned page. The frame cannot be evicted while any PageRef to it
/// lives; destruction unpins. Move-only.
class PageRef {
 public:
  PageRef() = default;
  ~PageRef();
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  /// The cached page image. Callers mutate it only under the engine
  /// lock and call MarkDirty() afterwards.
  PageBuf& buf() { return *buf_; }
  const PageBuf& buf() const { return *buf_; }
  /// Flags the frame dirty + unlogged (it now differs from both the
  /// data file and the WAL).
  void MarkDirty();
  /// Releases the pin early.
  void Reset();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, PageId id, PageBuf* buf)
      : pool_(pool), id_(id), buf_(buf) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  PageBuf* buf_ = nullptr;
};

class BufferPool {
 public:
  /// `capacity` is the soft frame cap (pages kept cached).
  BufferPool(Pager* pager, size_t capacity);

  /// Pins page `id`, reading (and checksum-verifying) it from the data
  /// file on a miss.
  Result<PageRef> Fetch(PageId id) LYRIC_EXCLUDES(mu_);

  /// Pins a fresh zeroed frame for newly allocated page `id` (no disk
  /// read); the frame starts dirty + unlogged.
  Result<PageRef> CreateZeroed(PageId id, PageType type) LYRIC_EXCLUDES(mu_);

  /// Sealed copies of every unlogged frame, ascending by page id —
  /// exactly the images a commit appends to the WAL.
  std::vector<std::pair<PageId, PageBuf>> SnapshotUnlogged()
      LYRIC_EXCLUDES(mu_);

  /// Clears the unlogged flag on `ids` (their images are durably in the
  /// WAL; eviction may now write them to the data file).
  void MarkLogged(const std::vector<std::pair<PageId, PageBuf>>& ids)
      LYRIC_EXCLUDES(mu_);

  /// Writes every dirty logged frame to the data file (no fsync — the
  /// caller owns the checkpoint fsync ordering). Fails if any frame is
  /// still unlogged: flushing one would break the WAL-first rule.
  Status FlushDirty() LYRIC_EXCLUDES(mu_);

  /// Drops frames for pages that no longer exist (store re-import) or
  /// all clean frames (memory pressure relief).
  void DropAllForTesting() LYRIC_EXCLUDES(mu_);

  /// True when any frame holds unlogged mutations.
  bool HasUnlogged() LYRIC_EXCLUDES(mu_);

  size_t FrameCount() LYRIC_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  friend class PageRef;

  struct Frame {
    PageId id = kInvalidPage;
    PageBuf buf;
    bool dirty = false;
    bool unlogged = false;
    int pins = 0;
    uint64_t last_used = 0;
  };

  void Unpin(PageId id) LYRIC_EXCLUDES(mu_);
  /// Evicts LRU unpinned logged frames until the pool is within
  /// capacity; dirty evictees are written back (not fsynced) first.
  Status EvictIfNeededLocked() LYRIC_REQUIRES(mu_);

  Pager* pager_;
  const size_t capacity_;
  mutable sync::Mutex mu_{sync::LockRank::kBufferPool, "buffer_pool"};
  std::map<PageId, std::unique_ptr<Frame>> frames_ LYRIC_GUARDED_BY(mu_);
  uint64_t use_tick_ LYRIC_GUARDED_BY(mu_) = 0;
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_BUFFER_POOL_H_
