#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace lyric {
namespace storage {

namespace {

void EncodeHeader(uint8_t* out, uint64_t base_lsn) {
  Store64(out, kWalMagic);
  Store64(out + 8, base_lsn);
  Store32(out + 16, Crc32c::Compute(out, 16));
  Store32(out + 20, 0);
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  auto wal = std::unique_ptr<Wal>(new Wal());
  sync::MutexLock lock(wal->mu_);
  LYRIC_ASSIGN_OR_RETURN(wal->file_, File::OpenReadWrite(path));
  LYRIC_ASSIGN_OR_RETURN(uint64_t size, wal->file_.Size());
  if (size < kHeaderSize) {
    // Fresh (or unreadably short) log: write a clean header. The data
    // file is authoritative; an empty WAL just means "no redo work".
    LYRIC_RETURN_NOT_OK(wal->file_.Truncate(0));
    uint8_t header[kHeaderSize];
    EncodeHeader(header, 1);
    LYRIC_RETURN_NOT_OK(wal->file_.Append(header, kHeaderSize));
    LYRIC_RETURN_NOT_OK(wal->file_.Sync());
    wal->next_lsn_ = 1;
  } else {
    // The owner replays before opening, so the log here is either
    // empty-after-reset or freshly reset by recovery; scan the header
    // for the base LSN and trust Replay to have truncated the tail.
    uint8_t header[kHeaderSize];
    LYRIC_RETURN_NOT_OK(wal->file_.ReadAt(0, header, kHeaderSize));
    if (Load64(header) != kWalMagic ||
        Load32(header + 16) != Crc32c::Compute(header, 16)) {
      return Status::DataLoss("WAL header corrupt in '" + path +
                              "' — run recovery (PagedStore::Open)");
    }
    wal->next_lsn_ = Load64(header + 8);
  }
  return wal;
}

Status Wal::AppendRecordLocked(RecordType type, const uint8_t* payload,
                               size_t len, uint64_t* lsn_out) {
  LYRIC_RETURN_NOT_OK(sticky_error_);
  const uint64_t lsn = next_lsn_;
  std::vector<uint8_t> rec(kRecordHeaderSize + len);
  Store32(rec.data() + 4, static_cast<uint32_t>(len));
  Store64(rec.data() + 8, lsn);
  rec[16] = static_cast<uint8_t>(type);
  rec[17] = rec[18] = rec[19] = 0;
  if (len > 0) std::memcpy(rec.data() + kRecordHeaderSize, payload, len);
  Store32(rec.data(),
          Crc32c::Compute(rec.data() + 4, rec.size() - 4));
  // crash_accounted: LYRIC_STORAGE_CRASH_AT offsets are defined over
  // appended WAL bytes — the crash matrix kills the writer here.
  Status st = file_.Append(rec.data(), rec.size(), /*crash_accounted=*/true);
  if (!st.ok()) {
    // The log may now hold a torn record; anything appended after it
    // would be unreachable at replay. Fail-stop until reopen.
    sticky_error_ = st;
    return st;
  }
  next_lsn_ = lsn + 1;
  appended_lsn_ = lsn;
  *lsn_out = lsn;
  return Status::OK();
}

Result<uint64_t> Wal::AppendPageImage(PageId id, const PageBuf& image) {
  LYRIC_OBS_COUNT("storage.wal.page_images");
  std::vector<uint8_t> payload(8 + kPageSize);
  Store64(payload.data(), id);
  std::memcpy(payload.data() + 8, image.data(), kPageSize);
  sync::MutexLock lock(mu_);
  uint64_t lsn = 0;
  LYRIC_RETURN_NOT_OK(
      AppendRecordLocked(kPageImage, payload.data(), payload.size(), &lsn));
  return lsn;
}

Result<uint64_t> Wal::AppendCommit(uint64_t image_count) {
  LYRIC_OBS_COUNT("storage.wal.commits");
  uint8_t payload[8];
  Store64(payload, image_count);
  sync::MutexLock lock(mu_);
  uint64_t lsn = 0;
  LYRIC_RETURN_NOT_OK(
      AppendRecordLocked(kCommit, payload, sizeof(payload), &lsn));
  return lsn;
}

// Group commit, leader/follower. Manual Lock/Unlock so the leader can
// fsync with the mutex released (followers append and enqueue behind a
// single fsync); the thread-safety analysis cannot follow the
// conditional hand-off, so this one function opts out — the runtime
// rank checker still validates every acquisition.
Status Wal::SyncTo(uint64_t lsn) LYRIC_NO_THREAD_SAFETY_ANALYSIS {
  static obs::Counter& fsyncs =
      obs::Registry::Global().GetCounter("storage.wal.fsyncs");
  static obs::Counter& riders =
      obs::Registry::Global().GetCounter("storage.wal.group_commit_riders");
  static obs::Histogram& sync_ns =
      obs::Registry::Global().GetHistogram("storage.wal.sync_ns");
  obs::ScopedHistogramTimer timer(sync_ns);
  mu_.Lock();
  for (;;) {
    if (!sticky_error_.ok()) {
      Status st = sticky_error_;
      mu_.Unlock();
      return st;
    }
    if (synced_lsn_ >= lsn) {
      // A leader's fsync covered us: a free ride.
      mu_.Unlock();
      return Status::OK();
    }
    if (!sync_in_flight_) {
      sync_in_flight_ = true;
      const uint64_t target = appended_lsn_;
      mu_.Unlock();
      Status st = file_.Sync();  // the one slow operation, lock-free
      fsyncs.Increment();
      mu_.Lock();
      sync_in_flight_ = false;
      if (st.ok()) {
        if (target > synced_lsn_) synced_lsn_ = target;
      } else {
        sticky_error_ = st;
      }
      sync_done_.NotifyAll();
      // Loop: on success target >= lsn (we appended before calling),
      // so the next iteration returns OK; on failure it returns the
      // sticky error.
    } else {
      riders.Increment();
      sync_done_.Wait(mu_);
    }
  }
}

Status Wal::Reset(uint64_t next_lsn) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(sticky_error_);
  LYRIC_RETURN_NOT_OK(file_.Truncate(0));
  uint8_t header[kHeaderSize];
  EncodeHeader(header, next_lsn);
  LYRIC_RETURN_NOT_OK(file_.Append(header, kHeaderSize));
  LYRIC_RETURN_NOT_OK(file_.Sync());
  next_lsn_ = next_lsn;
  appended_lsn_ = 0;
  synced_lsn_ = next_lsn - 1;
  LYRIC_OBS_COUNT("storage.wal.resets");
  return Status::OK();
}

Result<uint64_t> Wal::SizeBytes() {
  sync::MutexLock lock(mu_);
  return file_.Size();
}

uint64_t Wal::NextLsn() {
  sync::MutexLock lock(mu_);
  return next_lsn_;
}

Result<Wal::ReplayStats> Wal::Replay(
    const std::string& path,
    const std::function<Status(PageId, const PageBuf&)>& apply) {
  ReplayStats stats;
  auto file_or = File::OpenReadOnly(path);
  if (!file_or.ok()) {
    if (file_or.status().IsNotFound()) return stats;  // no log, no redo
    return file_or.status();
  }
  File file = std::move(file_or).value();
  LYRIC_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  if (size < kHeaderSize) {
    // A log torn inside its own header: nothing was ever committed
    // through it (the header is written and fsynced at creation, before
    // any record) — treat as empty but flag the debris.
    stats.torn_tail_bytes = size;
    return stats;
  }
  uint8_t header[kHeaderSize];
  LYRIC_RETURN_NOT_OK(file.ReadAt(0, header, kHeaderSize));
  if (Load64(header) != kWalMagic ||
      Load32(header + 16) != Crc32c::Compute(header, 16)) {
    return Status::DataLoss("WAL header corrupt in '" + path + "'");
  }
  const uint64_t base_lsn = Load64(header + 8);
  stats.next_lsn = base_lsn;
  stats.valid_bytes = kHeaderSize;

  // Scan records, staging page images until each commit record seals
  // them. The first malformed/torn record ends the scan: everything
  // after it is unreachable debris from the crash.
  std::vector<std::pair<PageId, PageBuf>> staged;
  uint64_t offset = kHeaderSize;
  uint64_t expect_lsn = base_lsn;
  while (offset + kRecordHeaderSize <= size) {
    uint8_t rec_header[kRecordHeaderSize];
    LYRIC_RETURN_NOT_OK(file.ReadAt(offset, rec_header, kRecordHeaderSize));
    const uint32_t len = Load32(rec_header + 4);
    const uint64_t lsn = Load64(rec_header + 8);
    const uint8_t type = rec_header[16];
    // Sanity before trusting len for a read: bounded size, in-file.
    if (len > 8 + kPageSize || offset + kRecordHeaderSize + len > size ||
        lsn != expect_lsn) {
      break;
    }
    std::vector<uint8_t> payload(len);
    if (len > 0) {
      LYRIC_RETURN_NOT_OK(
          file.ReadAt(offset + kRecordHeaderSize, payload.data(), len));
    }
    // CRC over (len, lsn, type, pad, payload).
    std::vector<uint8_t> covered(kRecordHeaderSize - 4 + len);
    std::memcpy(covered.data(), rec_header + 4, kRecordHeaderSize - 4);
    if (len > 0) {
      std::memcpy(covered.data() + kRecordHeaderSize - 4, payload.data(),
                  len);
    }
    if (Load32(rec_header) != Crc32c::Compute(covered.data(),
                                              covered.size())) {
      break;
    }
    if (type == kPageImage && len == 8 + kPageSize) {
      PageId id = Load64(payload.data());
      PageBuf image;
      std::memcpy(image.data(), payload.data() + 8, kPageSize);
      // The logged image was sealed at commit; a mismatch here means
      // in-log corruption — stop, like any other broken record.
      if (!VerifyPage(image)) break;
      staged.emplace_back(id, image);
    } else if (type == kCommit && len == 8) {
      for (const auto& [id, image] : staged) {
        LYRIC_RETURN_NOT_OK(apply(id, image));
        ++stats.images_applied;
      }
      staged.clear();
      ++stats.committed_txns;
      stats.last_commit_lsn = lsn;
      stats.valid_bytes = offset + kRecordHeaderSize + len;
    } else {
      break;  // unknown type or malformed length
    }
    offset += kRecordHeaderSize + len;
    expect_lsn = lsn + 1;
  }
  // Uncommitted staged images (txn without a commit record) are
  // correctly discarded: that transaction never happened.
  stats.torn_tail_bytes = size - stats.valid_bytes;
  stats.next_lsn = expect_lsn > stats.last_commit_lsn + 1
                       ? stats.last_commit_lsn + 1
                       : expect_lsn;
  if (stats.last_commit_lsn == 0) stats.next_lsn = base_lsn;
  return stats;
}

}  // namespace storage
}  // namespace lyric
