// Slotted-page B+tree over the buffer pool: the paged store's index
// from record key to serialized constraint text (docs/STORAGE.md).
//
// Node layout (offsets from the page start; the first 16 bytes are the
// common page header from page.h):
//
//   16..23  leaf: next-leaf page id (0 = last)  |  internal: rightmost
//           child page id
//   24..25  cell count (u16)
//   26..27  cell content start (u16): lowest byte used by cell bodies,
//           which are packed downward from the page end; 0 on a freshly
//           zeroed page means "kPageSize" (empty)
//   28..    slot array, one u16 cell offset per cell, sorted by key
//
// Leaf cell:      key len (u16) | value len (u32) | overflow head page
//                 (u64, 0 = inline) | key bytes | inline value bytes
// Internal cell:  child page (u64) | key len (u16) | key bytes
//
// Separator convention: an internal cell's key is an UPPER BOUND (the
// max key ever routed) for its child's subtree; the rightmost child
// covers everything greater. Search descends into the first cell whose
// key >= the probe. Deletions never tighten separators — a stale upper
// bound still routes correctly — so delete needs no parent fix-ups and
// no rebalancing (freed space is reused by later inserts; pages are
// reclaimed wholesale on checkpoint-compaction via export/import).
//
// Values whose cell would exceed kMaxInlineCell spill to an overflow
// chain (PageType::kOverflow: next page u64 at 16, chunk len u32 at 24,
// data from 28). The tree allocates and frees pages through the
// PageAllocator interface its owner (PagedStore) implements over the
// meta-page free list.
//
// Concurrency: the tree has no locks of its own — every call happens
// under the owner's engine lock (rank kStorageEngine); the buffer pool
// below does its own latching.

#ifndef LYRIC_STORAGE_BTREE_H_
#define LYRIC_STORAGE_BTREE_H_

#include <functional>
#include <string>
#include <string_view>

#include "storage/buffer_pool.h"
#include "util/result.h"

namespace lyric {
namespace storage {

/// Longest key the tree accepts. Keys here are short structured tags
/// ("A\x1f<oid>\x1f<attr>"); the limit keeps worst-case fanout sane.
inline constexpr size_t kMaxKeyLen = 512;
/// Leaf cells larger than this (header + key + value) spill the value
/// to an overflow chain. Chosen so any two cells always fit a page.
inline constexpr size_t kMaxInlineCell = 1024;

/// Page allocation hooks the tree's owner provides (free-list policy
/// lives with the meta page, not here).
class PageAllocator {
 public:
  virtual ~PageAllocator() = default;
  /// A pinned, zero-initialized page of `type` (dirty + unlogged).
  virtual Result<PageRef> Allocate(PageType type) = 0;
  /// Returns `id` to the free list.
  virtual Status Free(PageId id) = 0;
};

class BTree {
 public:
  BTree(BufferPool* pool, PageAllocator* alloc)
      : pool_(pool), alloc_(alloc) {}

  /// Inserts or replaces `key`. `*root` is updated when the root splits
  /// (or the tree was empty). Returns true when an existing value was
  /// replaced.
  Result<bool> Put(PageId* root, std::string_view key,
                   std::string_view value);

  /// The value for `key`; kNotFound when absent.
  Result<std::string> Get(PageId root, std::string_view key);

  /// Removes `key` if present; returns whether it existed.
  Result<bool> Delete(PageId root, std::string_view key);

  /// In-order scan starting at the first key >= `lower`. The callback
  /// returns false to stop early, or an error to abort the scan.
  Status Scan(PageId root, std::string_view lower,
              const std::function<Result<bool>(std::string_view key,
                                               std::string_view value)>& fn);

 private:
  struct InsertResult {
    bool split = false;
    PageId right = kInvalidPage;  // new right sibling when split
    std::string left_max;         // max key remaining in the left node
    bool replaced = false;
  };

  Status InsertRec(PageId page_id, std::string_view key,
                   std::string_view value, InsertResult* out);
  Status InsertIntoLeaf(PageRef& leaf, std::string_view key,
                        std::string_view value, InsertResult* out);

  /// Builds the full serialized value, spilling to overflow when needed;
  /// on return `cell` holds the ready-to-insert leaf cell bytes.
  Status BuildLeafCell(std::string_view key, std::string_view value,
                       std::string* cell);

  Result<PageId> WriteOverflow(std::string_view value);
  Status ReadOverflow(PageId head, uint64_t total_len, std::string* out);
  Status FreeOverflow(PageId head);
  /// Frees the overflow chain (if any) referenced by the leaf cell at
  /// slot `idx`.
  Status FreeCellOverflow(const PageBuf& page, int idx);

  /// Descends to the leaf that owns `key`. kNotFound only on an empty
  /// tree (root == kInvalidPage is handled by callers).
  Result<PageRef> DescendToLeaf(PageId root, std::string_view key);

  BufferPool* pool_;
  PageAllocator* alloc_;
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_BTREE_H_
