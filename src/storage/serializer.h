// Textual persistence for constraint object bases.
//
// A dump is a self-contained, human-readable catalog:
//
//   -- lyric database dump v1
//   CLASS Office_Object (x, y) {
//     name : string;
//     extent : CST(w, z);
//   }
//   CLASS Desk ISA Office_Object {
//     drawer : Drawer (p, q);
//     drawer_center : CST(p, q);
//   }
//   OBJECT my_desk : Object_in_Room {
//     inv_number = '22-354';
//     location = CST ((x, y) | x = 6 and y = 4);
//     catalog_object = standard_desk;
//   }
//   INSTANCEOF <cst-or-object oid> : Region;
//
// Constraint values serialize through CstObject::CanonicalString and load
// back through the query layer's formula parser (including quantified
// bodies, `exists @b0 . (...)`), so a dump/load round trip preserves the
// point sets and the CST-oid identities exactly.

#ifndef LYRIC_STORAGE_SERIALIZER_H_
#define LYRIC_STORAGE_SERIALIZER_H_

#include <string>

#include "object/database.h"

namespace lyric {

/// Dump/load entry points. Methods (C++ callables) are not serialized;
/// re-register them after loading.
class Serializer {
 public:
  /// Renders the schema, every stored object, every interned CST object
  /// in use, and the extra instance-of facts.
  static Result<std::string> DumpDatabase(const Database& db);

  /// Loads a dump produced by DumpDatabase into an empty database.
  static Status LoadDatabase(const std::string& text, Database* db);

  /// File convenience wrappers.
  static Status SaveToFile(const Database& db, const std::string& path);
  static Status LoadFromFile(const std::string& path, Database* db);
};

}  // namespace lyric

#endif  // LYRIC_STORAGE_SERIALIZER_H_
