// Textual persistence for constraint object bases.
//
// A dump is a self-contained, human-readable catalog:
//
//   -- lyric database dump v1
//   CLASS Office_Object (x, y) {
//     name : string;
//     extent : CST(w, z);
//   }
//   CLASS Desk ISA Office_Object {
//     drawer : Drawer (p, q);
//     drawer_center : CST(p, q);
//   }
//   OBJECT my_desk : Object_in_Room {
//     inv_number = '22-354';
//     location = CST ((x, y) | x = 6 and y = 4);
//     catalog_object = standard_desk;
//   }
//   INSTANCEOF <cst-or-object oid> : Region;
//
// Constraint values serialize through CstObject::CanonicalString and load
// back through the query layer's formula parser (including quantified
// bodies, `exists @b0 . (...)`), so a dump/load round trip preserves the
// point sets and the CST-oid identities exactly.

#ifndef LYRIC_STORAGE_SERIALIZER_H_
#define LYRIC_STORAGE_SERIALIZER_H_

#include <string>

#include "object/database.h"

namespace lyric {

/// Dump/load entry points. Methods (C++ callables) are not serialized;
/// re-register them after loading.
class Serializer {
 public:
  /// Renders the schema, every stored object, every interned CST object
  /// in use, and the extra instance-of facts.
  static Result<std::string> DumpDatabase(const Database& db);

  /// Loads a dump produced by DumpDatabase into an empty database.
  static Status LoadDatabase(const std::string& text, Database* db);

  /// File convenience wrappers. SaveToFile is crash-safe: the dump is
  /// written to a temp file, fsynced, and renamed over `path` (plus a
  /// directory fsync), so an interrupted save never clobbers an
  /// existing good dump.
  static Status SaveToFile(const Database& db, const std::string& path);
  static Status LoadFromFile(const std::string& path, Database* db);

  // -- dump fragments ------------------------------------------------------
  // The paged storage engine (storage/paged_store.h) stores records in
  // the dump grammar, one fragment per schema/object/attribute entry,
  // and reassembles them into a full dump for LoadDatabase. These
  // helpers are the single source of truth for that grammar;
  // DumpDatabase composes the same pieces.

  /// The "CLASS name ... [ ... ]\n" block for one class definition.
  static Result<std::string> ClassText(const ClassDef& def);
  /// An attribute value in the dump's value grammar (oids bare, CST
  /// objects as "CST <canonical projection>", sets bracketed).
  static Result<std::string> ValueText(const Database& db,
                                       const Value& value);
  /// A full "INSTANCEOF <oid-or-CST> => class;\n" line.
  static Result<std::string> InstanceOfLine(const Database& db,
                                            const Oid& oid,
                                            const std::string& class_name);
};

}  // namespace lyric

#endif  // LYRIC_STORAGE_SERIALIZER_H_
