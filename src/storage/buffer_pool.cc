#include "storage/buffer_pool.h"

#include "obs/metrics.h"

namespace lyric {
namespace storage {

PageRef::~PageRef() { Reset(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), id_(other.id_), buf_(other.buf_) {
  other.pool_ = nullptr;
  other.buf_ = nullptr;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Reset();
    pool_ = other.pool_;
    id_ = other.id_;
    buf_ = other.buf_;
    other.pool_ = nullptr;
    other.buf_ = nullptr;
  }
  return *this;
}

void PageRef::MarkDirty() {
  if (pool_ == nullptr) return;
  sync::MutexLock lock(pool_->mu_);
  auto it = pool_->frames_.find(id_);
  if (it != pool_->frames_.end()) {
    it->second->dirty = true;
    it->second->unlogged = true;
  }
}

void PageRef::Reset() {
  if (pool_ != nullptr) pool_->Unpin(id_);
  pool_ = nullptr;
  buf_ = nullptr;
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {}

Result<PageRef> BufferPool::Fetch(PageId id) {
  // Metric handles resolve before mu_ (registry ranks above the pool,
  // but keeping resolution outside the lock avoids first-call nesting).
  static obs::Counter& hits =
      obs::Registry::Global().GetCounter("storage.pool.hits");
  static obs::Counter& misses =
      obs::Registry::Global().GetCounter("storage.pool.misses");
  static obs::Gauge& pages =
      obs::Registry::Global().GetGauge("storage.pool.pages");
  {
    sync::MutexLock lock(mu_);
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      Frame& frame = *it->second;
      ++frame.pins;
      frame.last_used = ++use_tick_;
      hits.Increment();
      return PageRef(this, id, &frame.buf);
    }
  }
  misses.Increment();
  // Read outside the pool lock: page I/O must not serialize unrelated
  // fetches. A racing fetch of the same page is resolved below (the
  // second read is discarded) — and cannot happen today anyway, since
  // callers hold the engine lock.
  PageBuf buf;
  LYRIC_RETURN_NOT_OK(pager_->ReadPage(id, &buf));
  sync::MutexLock lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    LYRIC_RETURN_NOT_OK(EvictIfNeededLocked());
    auto frame = std::make_unique<Frame>();
    frame->id = id;
    frame->buf = buf;
    it = frames_.emplace(id, std::move(frame)).first;
    pages.Set(static_cast<int64_t>(frames_.size()));
  }
  Frame& frame = *it->second;
  ++frame.pins;
  frame.last_used = ++use_tick_;
  return PageRef(this, id, &frame.buf);
}

Result<PageRef> BufferPool::CreateZeroed(PageId id, PageType type) {
  static obs::Gauge& pages =
      obs::Registry::Global().GetGauge("storage.pool.pages");
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(EvictIfNeededLocked());
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  InitPage(frame->buf, type);
  frame->dirty = true;
  frame->unlogged = true;
  frame->pins = 1;
  frame->last_used = ++use_tick_;
  Frame& ref = *frame;
  frames_[id] = std::move(frame);  // replaces any stale frame (freed page reuse)
  pages.Set(static_cast<int64_t>(frames_.size()));
  return PageRef(this, id, &ref.buf);
}

std::vector<std::pair<PageId, PageBuf>> BufferPool::SnapshotUnlogged() {
  sync::MutexLock lock(mu_);
  std::vector<std::pair<PageId, PageBuf>> out;
  for (auto& [id, frame] : frames_) {
    if (!frame->unlogged) continue;
    SealPage(frame->buf);
    out.emplace_back(id, frame->buf);
  }
  return out;
}

void BufferPool::MarkLogged(
    const std::vector<std::pair<PageId, PageBuf>>& ids) {
  sync::MutexLock lock(mu_);
  for (const auto& [id, image] : ids) {
    auto it = frames_.find(id);
    if (it != frames_.end()) it->second->unlogged = false;
  }
}

Status BufferPool::FlushDirty() {
  static obs::Gauge& dirty_gauge =
      obs::Registry::Global().GetGauge("storage.pool.dirty");
  // Collect under the lock, write outside it (page writes may be slow
  // and must not block pins). Single-writer discipline (the engine
  // lock) means nobody mutates the frames while we flush.
  std::vector<Frame*> dirty;
  {
    sync::MutexLock lock(mu_);
    for (auto& [id, frame] : frames_) {
      if (frame->unlogged) {
        return Status::Internal(
            "FlushDirty with unlogged page " + std::to_string(id) +
            " — write-ahead rule violation (commit must log it first)");
      }
      if (frame->dirty) dirty.push_back(frame.get());
    }
  }
  for (Frame* frame : dirty) {
    LYRIC_RETURN_NOT_OK(pager_->WritePage(frame->id, frame->buf));
  }
  sync::MutexLock lock(mu_);
  for (Frame* frame : dirty) frame->dirty = false;
  int64_t remaining = 0;
  for (auto& [id, frame] : frames_) remaining += frame->dirty ? 1 : 0;
  dirty_gauge.Set(remaining);
  return Status::OK();
}

void BufferPool::DropAllForTesting() {
  sync::MutexLock lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second->pins == 0) {
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

bool BufferPool::HasUnlogged() {
  sync::MutexLock lock(mu_);
  for (auto& [id, frame] : frames_) {
    if (frame->unlogged) return true;
  }
  return false;
}

size_t BufferPool::FrameCount() {
  sync::MutexLock lock(mu_);
  return frames_.size();
}

void BufferPool::Unpin(PageId id) {
  sync::MutexLock lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end() && it->second->pins > 0) --it->second->pins;
}

Status BufferPool::EvictIfNeededLocked() {
  static obs::Counter& evictions =
      obs::Registry::Global().GetCounter("storage.pool.evictions");
  static obs::Counter& overflows =
      obs::Registry::Global().GetCounter("storage.pool.overflows");
  while (frames_.size() >= capacity_) {
    Frame* victim = nullptr;
    for (auto& [id, frame] : frames_) {
      if (frame->pins > 0 || frame->unlogged) continue;
      if (victim == nullptr || frame->last_used < victim->last_used) {
        victim = frame.get();
      }
    }
    if (victim == nullptr) {
      // Everything pinned or unlogged: let the pool grow past capacity
      // instead of failing the fetch; commit/checkpoint will drain it.
      overflows.Increment();
      return Status::OK();
    }
    if (victim->dirty) {
      // Logged + dirty: safe to write back (its WAL image repairs any
      // torn write), no fsync needed here.
      LYRIC_RETURN_NOT_OK(pager_->WritePage(victim->id, victim->buf));
    }
    evictions.Increment();
    frames_.erase(victim->id);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace lyric
