// Pager: checksummed page I/O over the data file.
//
// The pager is deliberately dumb — it reads and writes whole pages,
// verifying the CRC on the way in and sealing it on the way out, and it
// knows how long the file is. Allocation policy (free list, page count)
// lives in the meta page and is managed by PagedStore; caching and
// eviction live in BufferPool. All methods return typed Statuses; a
// checksum mismatch is kDataLoss and names the page.

#ifndef LYRIC_STORAGE_PAGER_H_
#define LYRIC_STORAGE_PAGER_H_

#include <string>

#include "storage/file_io.h"
#include "storage/page.h"

namespace lyric {
namespace storage {

class Pager {
 public:
  /// Opens (creating if absent) the data file at `path`.
  static Result<Pager> Open(const std::string& path);

  Pager() = default;
  Pager(Pager&&) = default;
  Pager& operator=(Pager&&) = default;

  /// Reads and verifies page `id`. kDataLoss on checksum mismatch or a
  /// read past the end of the file.
  Status ReadPage(PageId id, PageBuf* out) const;

  /// Reads page `id` without checksum verification (recovery uses this
  /// to distinguish "torn" from "missing").
  Status ReadPageRaw(PageId id, PageBuf* out) const;

  /// Seals (checksums) and writes page `id`, extending the file if
  /// needed. The image in `page` gets its CRC refreshed in place.
  Status WritePage(PageId id, PageBuf& page);

  /// Writes a pre-sealed image verbatim (WAL replay writes the logged
  /// image including its logged checksum).
  Status WritePageRaw(PageId id, const PageBuf& page);

  Status Sync();
  /// Pages the file currently holds (file size / page size).
  Result<uint64_t> PageCountOnDisk() const;
  Status Close();
  const std::string& path() const { return file_.path(); }

 private:
  File file_;
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_PAGER_H_
