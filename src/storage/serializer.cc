#include "storage/serializer.h"

#include <fstream>
#include <sstream>

#include "query/formula_builder.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "storage/file_io.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace lyric {

namespace {

// ---------------------------------------------------------------------------
// Dumping
// ---------------------------------------------------------------------------

// Oid rendering: symbols bare, funcs f(...), strings quoted, rationals as
// num or num/den — all of which the loader's value grammar reads back.
std::string OidText(const Oid& oid) { return oid.ToString(); }

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

class Loader {
 public:
  Loader(std::vector<Token> tokens, Database* db)
      : tokens_(std::move(tokens)), db_(db) {}

  Status Run() {
    // Phase 1: parse everything; inserts happen as declarations appear,
    // attribute writes are deferred so forward references resolve.
    while (!At(TokenKind::kEnd)) {
      LYRIC_ASSIGN_OR_RETURN(std::string word, ExpectIdent());
      std::string lower = ToLower(word);
      if (lower == "class") {
        LYRIC_RETURN_NOT_OK(ParseClass());
      } else if (lower == "object") {
        LYRIC_RETURN_NOT_OK(ParseObject());
      } else if (lower == "instanceof") {
        LYRIC_RETURN_NOT_OK(ParseInstanceOf());
      } else {
        return Err("expected CLASS, OBJECT, or INSTANCEOF, found '" + word +
                   "'");
      }
    }
    // Phase 2: apply deferred attribute writes.
    for (auto& [oid, attr, value] : pending_attrs_) {
      LYRIC_RETURN_NOT_OK(db_->SetAttribute(oid, attr, std::move(value)));
    }
    return Status::OK();
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool Accept(TokenKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind k) {
    if (!Accept(k)) {
      return Err(std::string("expected ") + TokenKindToString(k));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    // Every keyword doubles as an identifier in the dump grammar (a class
    // or attribute may be named `max`, `view`, ...): keyword tokens carry
    // their raw text, so accept any token that lexed from a word.
    if (!Cur().text.empty() && Cur().kind != TokenKind::kNumber &&
        Cur().kind != TokenKind::kString) {
      std::string out = Cur().text;
      ++pos_;
      return out;
    }
    return Err("expected identifier");
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Cur().offset) +
                              " in database dump");
  }

  Result<std::string> ParseClassName() {
    LYRIC_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (name == "CST" && At(TokenKind::kLParen) &&
        tokens_[pos_ + 1].kind == TokenKind::kNumber) {
      ++pos_;
      std::string digits = Cur().text;
      ++pos_;
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return "CST(" + digits + ")";
    }
    return name;
  }

  Result<std::vector<std::string>> ParseVarList() {
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    std::vector<std::string> out;
    if (!At(TokenKind::kRParen)) {
      for (;;) {
        LYRIC_ASSIGN_OR_RETURN(std::string v, ExpectIdent());
        out.push_back(std::move(v));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return out;
  }

  Status ParseClass() {
    ClassDef def;
    LYRIC_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    if (At(TokenKind::kLParen)) {
      LYRIC_ASSIGN_OR_RETURN(def.interface_vars, ParseVarList());
    }
    if (At(TokenKind::kIdent) && ToLower(Cur().text) == "isa") {
      ++pos_;
      for (;;) {
        LYRIC_ASSIGN_OR_RETURN(std::string p, ParseClassName());
        def.parents.push_back(std::move(p));
        if (!Accept(TokenKind::kComma)) break;
      }
    }
    // '{' attrs '}' — attrs use LBracket? No: braces are not tokens; use
    // the bracket tokens we have: '[' ']'. The dump writes '[' ']'.
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLBracket));
    while (!Accept(TokenKind::kRBracket)) {
      AttributeDef attr;
      LYRIC_ASSIGN_OR_RETURN(attr.name, ExpectIdent());
      if (Accept(TokenKind::kStar)) attr.set_valued = true;
      // ':' is not a token either; the dump uses '=>' for the signature
      // arrow, mirroring the paper.
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kArrow));
      LYRIC_ASSIGN_OR_RETURN(std::string target, ExpectIdent());
      if (target == "CST") {
        attr.target_class = kCstClass;
        LYRIC_ASSIGN_OR_RETURN(attr.variables, ParseVarList());
      } else {
        attr.target_class = std::move(target);
        if (At(TokenKind::kLParen)) {
          LYRIC_ASSIGN_OR_RETURN(attr.variables, ParseVarList());
        }
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      def.attributes.push_back(std::move(attr));
    }
    return db_->schema().AddClass(std::move(def));
  }

  Result<Oid> ParseOid() {
    if (At(TokenKind::kNumber)) {
      Rational num = Cur().number;
      ++pos_;
      if (Accept(TokenKind::kSlash)) {
        if (!At(TokenKind::kNumber)) return Err("expected denominator");
        Rational den = Cur().number;
        ++pos_;
        return Oid::Real(num / den);
      }
      return num.IsInteger() ? Oid::Int(num.num().ToInt64().ValueOr(0))
                             : Oid::Real(num);
    }
    if (Accept(TokenKind::kMinus)) {
      if (!At(TokenKind::kNumber)) return Err("expected number after '-'");
      Rational num = Cur().number;
      ++pos_;
      if (Accept(TokenKind::kSlash)) {
        if (!At(TokenKind::kNumber)) return Err("expected denominator");
        Rational den = Cur().number;
        ++pos_;
        return Oid::Real(-(num / den));
      }
      return num.IsInteger() ? Oid::Int(-num.num().ToInt64().ValueOr(0))
                             : Oid::Real(-num);
    }
    if (At(TokenKind::kString)) {
      std::string s = Cur().text;
      ++pos_;
      return Oid::Str(std::move(s));
    }
    if (Accept(TokenKind::kTrue)) return Oid::Bool(true);
    if (Accept(TokenKind::kFalse)) return Oid::Bool(false);
    // Identifier: symbol or functional oid.
    LYRIC_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    if (Accept(TokenKind::kLParen)) {
      std::vector<Oid> args;
      if (!At(TokenKind::kRParen)) {
        for (;;) {
          LYRIC_ASSIGN_OR_RETURN(Oid arg, ParseOid());
          args.push_back(std::move(arg));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return Oid::Func(std::move(name), std::move(args));
    }
    return Oid::Symbol(std::move(name));
  }

  Result<Oid> ParseValueOid() {
    // CST <projection formula>.
    if (At(TokenKind::kIdent) && Cur().text == "CST") {
      ++pos_;
      LYRIC_ASSIGN_OR_RETURN(ast::Formula f,
                             ParseFormulaPrefix(tokens_, &pos_));
      if (f.kind != ast::Formula::Kind::kProject) {
        return Err("CST value must be a projection formula");
      }
      std::set<std::string> no_vars;
      FormulaBuilder fb(db_, &no_vars);
      LYRIC_ASSIGN_OR_RETURN(CstObject obj,
                             fb.BuildProjectionObject(f, Binding{},
                                                      /*eager=*/false));
      return db_->InternCst(obj);
    }
    return ParseOid();
  }

  Result<Value> ParseValue() {
    // Sets use bracket tokens (the dump writes [a, b]).
    if (Accept(TokenKind::kLBracket)) {
      std::vector<Oid> elems;
      if (!At(TokenKind::kRBracket)) {
        for (;;) {
          LYRIC_ASSIGN_OR_RETURN(Oid e, ParseValueOid());
          elems.push_back(std::move(e));
          if (!Accept(TokenKind::kComma)) break;
        }
      }
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
      return Value::Set(std::move(elems));
    }
    LYRIC_ASSIGN_OR_RETURN(Oid oid, ParseValueOid());
    return Value::Scalar(std::move(oid));
  }

  Status ParseObject() {
    LYRIC_ASSIGN_OR_RETURN(Oid oid, ParseOid());
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kArrow));
    LYRIC_ASSIGN_OR_RETURN(std::string cls, ParseClassName());
    LYRIC_RETURN_NOT_OK(db_->Insert(oid, cls));
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kLBracket));
    while (!Accept(TokenKind::kRBracket)) {
      LYRIC_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kEq));
      LYRIC_ASSIGN_OR_RETURN(Value value, ParseValue());
      LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      pending_attrs_.emplace_back(oid, std::move(attr), std::move(value));
    }
    return Status::OK();
  }

  Status ParseInstanceOf() {
    LYRIC_ASSIGN_OR_RETURN(Oid oid, ParseValueOid());
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kArrow));
    LYRIC_ASSIGN_OR_RETURN(std::string cls, ParseClassName());
    LYRIC_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
    return db_->AddInstanceOf(oid, cls);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
  std::vector<std::tuple<Oid, std::string, Value>> pending_attrs_;
};

}  // namespace

Result<std::string> Serializer::ClassText(const ClassDef& def) {
  std::ostringstream out;
  out << "CLASS " << def.name;
  if (!def.interface_vars.empty()) {
    out << " (" << Join(def.interface_vars, ", ") << ")";
  }
  if (!def.parents.empty()) {
    out << " ISA " << Join(def.parents, ", ");
  }
  out << " [\n";
  for (const AttributeDef& attr : def.attributes) {
    out << "  " << attr.name << (attr.set_valued ? "*" : "") << " => ";
    if (attr.IsCst()) {
      out << "CST (" << Join(attr.variables, ", ") << ")";
    } else {
      out << attr.target_class;
      if (!attr.variables.empty()) {
        out << " (" << Join(attr.variables, ", ") << ")";
      }
    }
    out << ";\n";
  }
  out << "]\n";
  return out.str();
}

Result<std::string> Serializer::ValueText(const Database& db,
                                          const Value& value) {
  auto one = [&db](const Oid& oid) -> Result<std::string> {
    if (oid.IsCst()) {
      // The canonical string is already a parseable projection formula.
      LYRIC_ASSIGN_OR_RETURN(CstObject obj, db.GetCst(oid));
      LYRIC_ASSIGN_OR_RETURN(std::string canonical, obj.CanonicalString());
      return "CST " + canonical;
    }
    return OidText(oid);
  };
  if (value.is_scalar()) return one(value.scalar());
  std::vector<std::string> parts;
  for (const Oid& e : value.elements()) {
    LYRIC_ASSIGN_OR_RETURN(std::string t, one(e));
    parts.push_back(std::move(t));
  }
  // Sets use brackets: braces are not in the lexer's alphabet.
  return "[" + Join(parts, ", ") + "]";
}

Result<std::string> Serializer::InstanceOfLine(const Database& db,
                                               const Oid& oid,
                                               const std::string& class_name) {
  if (oid.IsCst()) {
    LYRIC_ASSIGN_OR_RETURN(CstObject obj, db.GetCst(oid));
    LYRIC_ASSIGN_OR_RETURN(std::string canonical, obj.CanonicalString());
    return "INSTANCEOF CST " + canonical + " => " + class_name + ";\n";
  }
  return "INSTANCEOF " + OidText(oid) + " => " + class_name + ";\n";
}

Result<std::string> Serializer::DumpDatabase(const Database& db) {
  std::ostringstream out;
  out << "-- lyric database dump v1\n";
  // Classes, in registration order (parents always precede children).
  for (const std::string& name : db.schema().ClassNames()) {
    LYRIC_ASSIGN_OR_RETURN(const ClassDef* def, db.schema().GetClass(name));
    LYRIC_ASSIGN_OR_RETURN(std::string text, ClassText(*def));
    out << text;
  }
  // Objects.
  for (const auto& [oid, rec] : db.objects()) {
    out << "OBJECT " << OidText(oid) << " => " << rec.class_name << " [\n";
    for (const auto& [attr, value] : rec.attrs) {
      LYRIC_ASSIGN_OR_RETURN(std::string vt, ValueText(db, value));
      out << "  " << attr << " = " << vt << ";\n";
    }
    out << "]\n";
  }
  // Extra instance-of facts.
  for (const auto& [oid, classes] : db.extra_instance_of()) {
    for (const std::string& cls : classes) {
      LYRIC_ASSIGN_OR_RETURN(std::string line, InstanceOfLine(db, oid, cls));
      out << line;
    }
  }
  return out.str();
}

Status Serializer::LoadDatabase(const std::string& text, Database* db) {
  if (db->ObjectCount() != 0 || !db->schema().ClassNames().empty()) {
    return Status::InvalidArgument(
        "LoadDatabase requires an empty database");
  }
  // Typed kUnavailable: an injected transport failure is transient by
  // construction — nothing was read — so RetryPolicy may retry it.
  if (fault::Enabled() && fault::Inject(fault::kSiteSerializer)) {
    return Status::Unavailable("injected fault: serializer load");
  }
  LYRIC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  // Parse into a scratch database so a truncated or corrupted dump
  // rejects cleanly: the caller's database is only touched after the
  // whole payload parsed and applied (all-or-nothing).
  Database scratch;
  Loader loader(std::move(tokens), &scratch);
  LYRIC_RETURN_NOT_OK(loader.Run());
  *db = std::move(scratch);
  return Status::OK();
}

Status Serializer::SaveToFile(const Database& db, const std::string& path) {
  if (fault::Enabled() && fault::Inject(fault::kSiteSerializer)) {
    return Status::Unavailable("injected fault: serializer save");
  }
  LYRIC_ASSIGN_OR_RETURN(std::string text, DumpDatabase(db));
  // Crash-safe replacement: temp file + fsync + atomic rename. A save
  // interrupted at any byte leaves the previous dump intact.
  return storage::AtomicWriteFile(path, text);
}

Status Serializer::LoadFromFile(const std::string& path, Database* db) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadDatabase(buf.str(), db);
}

}  // namespace lyric
