// Low-level durable file I/O for the paged storage engine.
//
// Every syscall the engine depends on for crash safety funnels through
// this translation unit: positional reads/writes, appends, fsync, atomic
// whole-file replacement, and directory sync. Three concerns live here so
// the rest of the engine stays pure logic:
//
//  1. Typed errors. Failures come back as Status (kUnavailable for
//     injected/transient conditions, kInternal for real syscall errors,
//     kNotFound for missing files) — never exceptions, never aborts.
//  2. Fault injection. Each operation consults fault::kSiteStorage, so
//     LYRIC_FAULT=storage:<p> makes writes/fsyncs/reads fail on demand
//     and the fault-gate tests can prove the engine degrades cleanly.
//  3. Deterministic crash points. LYRIC_STORAGE_CRASH_AT=<n> terminates
//     the process (_exit, simulating kill -9) the moment the n-th byte
//     would be appended to a WAL: the prefix up to n is written, the rest
//     never happens. The crash-matrix recovery test sweeps n across a
//     whole log to prove every torn commit recovers to the last durable
//     state.
//  4. Deterministic disk exhaustion. LYRIC_STORAGE_FULL_AT=<n> makes the
//     disk "fill up" after n bytes of writes: the write that would cross
//     the budget fails whole (nothing torn) with typed
//     kResourceExhausted, and every later write keeps failing — exactly
//     how a full filesystem behaves until space is freed. The ENOSPC
//     fault-gate tests prove a full disk surfaces as a typed error
//     through the server, never an abort.

#ifndef LYRIC_STORAGE_FILE_IO_H_
#define LYRIC_STORAGE_FILE_IO_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace lyric {
namespace storage {

/// A move-only owned file descriptor. Close errors on destruction are
/// swallowed (use Close() when the error matters, e.g. after writes).
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens (creating if needed) a read/write file.
  static Result<File> OpenReadWrite(const std::string& path);
  /// Opens an existing file read-only (kNotFound when absent).
  static Result<File> OpenReadOnly(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Reads exactly `len` bytes at `offset` into `buf`. Short reads (EOF
  /// inside the range) are kDataLoss: the caller asked for bytes the
  /// file was supposed to have.
  Status ReadAt(uint64_t offset, void* buf, size_t len) const;
  /// Reads up to `len` bytes at `offset`; returns the count actually
  /// read (0 at EOF).
  Result<size_t> ReadAtMost(uint64_t offset, void* buf, size_t len) const;
  /// Writes exactly `len` bytes at `offset`.
  Status WriteAt(uint64_t offset, const void* buf, size_t len);
  /// Appends exactly `len` bytes at the current end; `crash_accounted`
  /// routes the bytes through the LYRIC_STORAGE_CRASH_AT counter (WAL
  /// appends only — the crash matrix is defined over WAL offsets).
  Status Append(const void* buf, size_t len, bool crash_accounted = false);
  /// Flushes file content and metadata to stable storage.
  Status Sync();
  /// Truncates (or extends with zeros) to `size` bytes.
  Status Truncate(uint64_t size);
  Result<uint64_t> Size() const;
  /// Closes, reporting the close() error (idempotent).
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Crash-safe whole-file replacement: writes `contents` to `path.tmp` in
/// the same directory, fsyncs it, renames over `path`, and fsyncs the
/// directory — an interrupted call never clobbers an existing good file.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Fsyncs the directory containing `path` so a rename/create within it
/// is durable.
Status SyncDirectoryOf(const std::string& path);

/// The LYRIC_STORAGE_CRASH_AT byte budget remaining, or a negative value
/// when no crash point is armed. Exposed for tests.
int64_t CrashBudgetRemainingForTesting();

/// Arms (or, with a negative value, disarms) the crash budget directly,
/// bypassing the once-per-process LYRIC_STORAGE_CRASH_AT parse. The
/// crash-matrix test forks workers after the parent has already touched
/// storage I/O; the fork inherits the parsed-and-disarmed state, so the
/// child re-arms through this hook. Tests only.
void ArmCrashBudgetForTesting(int64_t budget);

/// The LYRIC_STORAGE_FULL_AT byte budget remaining, or a negative value
/// when no disk-full point is armed. Exposed for tests.
int64_t DiskFullBudgetRemainingForTesting();

/// Arms (or, with a negative value, disarms) the injected-ENOSPC budget
/// directly, bypassing the once-per-process LYRIC_STORAGE_FULL_AT parse.
/// Once the budget is crossed, writes fail sticky with typed
/// kResourceExhausted until re-armed/disarmed. Tests only.
void ArmDiskFullForTesting(int64_t budget);

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_FILE_IO_H_
