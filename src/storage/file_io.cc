#include "storage/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace storage {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " '" + path +
                          "' failed: " + std::strerror(errno));
}

Status InjectedFault(const char* op) {
  LYRIC_OBS_COUNT("storage.fault.injected_io");
  return Status::Unavailable(std::string("injected fault: storage ") + op);
}

// LYRIC_STORAGE_CRASH_AT=<n>: _exit(137) once n bytes of crash-accounted
// (WAL) appends have been written; the byte prefix below n IS written
// first, so the on-disk state is exactly a kill -9 at WAL offset n.
// Negative when unarmed. Parsed once; the counter is process-wide.
std::atomic<int64_t> g_crash_budget{-1};
std::atomic<bool> g_crash_armed_checked{false};

int64_t CrashBudget() {
  if (!g_crash_armed_checked.load(std::memory_order_acquire)) {
    const char* env = std::getenv("LYRIC_STORAGE_CRASH_AT");
    int64_t budget = -1;
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      long long v = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0) budget = v;
    }
    g_crash_budget.store(budget, std::memory_order_relaxed);
    g_crash_armed_checked.store(true, std::memory_order_release);
  }
  return g_crash_budget.load(std::memory_order_relaxed);
}

// LYRIC_STORAGE_FULL_AT=<n>: the write that would push total written
// bytes past n fails whole with kResourceExhausted, and so does every
// write after it — sticky, like a genuinely full filesystem. The armed
// flag is separate from the budget because the budget keeps burning
// below zero once "full"; a negative budget with the flag up still
// means ENOSPC. Parsed once; the counter is process-wide.
std::atomic<int64_t> g_full_budget{-1};
std::atomic<bool> g_full_armed{false};
std::atomic<bool> g_full_armed_checked{false};

bool DiskFullArmed() {
  if (!g_full_armed_checked.load(std::memory_order_acquire)) {
    const char* env = std::getenv("LYRIC_STORAGE_FULL_AT");
    int64_t budget = -1;
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      long long v = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0) budget = v;
    }
    g_full_budget.store(budget, std::memory_order_relaxed);
    g_full_armed.store(budget >= 0, std::memory_order_relaxed);
    g_full_armed_checked.store(true, std::memory_order_release);
  }
  return g_full_armed.load(std::memory_order_relaxed);
}

}  // namespace

int64_t CrashBudgetRemainingForTesting() { return CrashBudget(); }

void ArmCrashBudgetForTesting(int64_t budget) {
  g_crash_budget.store(budget, std::memory_order_relaxed);
  g_crash_armed_checked.store(true, std::memory_order_release);
}

int64_t DiskFullBudgetRemainingForTesting() {
  DiskFullArmed();  // force the env parse
  return g_full_budget.load(std::memory_order_relaxed);
}

void ArmDiskFullForTesting(int64_t budget) {
  g_full_budget.store(budget, std::memory_order_relaxed);
  g_full_armed.store(budget >= 0, std::memory_order_relaxed);
  g_full_armed_checked.store(true, std::memory_order_release);
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<File> File::OpenReadWrite(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  File f;
  f.fd_ = fd;
  f.path_ = path;
  return f;
}

Result<File> File::OpenReadOnly(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Errno("open", path);
  }
  File f;
  f.fd_ = fd;
  f.path_ = path;
  return f;
}

Status File::ReadAt(uint64_t offset, void* buf, size_t len) const {
  LYRIC_ASSIGN_OR_RETURN(size_t got, ReadAtMost(offset, buf, len));
  if (got != len) {
    return Status::DataLoss("short read at offset " + std::to_string(offset) +
                            " of '" + path_ + "': wanted " +
                            std::to_string(len) + " bytes, got " +
                            std::to_string(got));
  }
  return Status::OK();
}

Result<size_t> File::ReadAtMost(uint64_t offset, void* buf,
                                size_t len) const {
  if (fd_ < 0) return Status::Internal("read on closed file");
  if (fault::Enabled() && fault::Inject(fault::kSiteStorage)) {
    return InjectedFault("read");
  }
  size_t done = 0;
  char* out = static_cast<char*>(buf);
  while (done < len) {
    ssize_t n = ::pread(fd_, out + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", path_);
    }
    if (n == 0) break;  // EOF
    done += static_cast<size_t>(n);
  }
  LYRIC_OBS_COUNT_N("storage.io.bytes_read", done);
  return done;
}

Status File::WriteAt(uint64_t offset, const void* buf, size_t len) {
  if (fd_ < 0) return Status::Internal("write on closed file");
  if (fault::Enabled() && fault::Inject(fault::kSiteStorage)) {
    return InjectedFault("write");
  }
  if (DiskFullArmed()) {
    // The crossing write fails whole — a full disk must never leave a
    // torn record behind — and the budget stays burned, so every write
    // after it keeps failing until space is "freed" (test re-arms).
    int64_t before = g_full_budget.fetch_sub(static_cast<int64_t>(len),
                                             std::memory_order_relaxed);
    if (before < static_cast<int64_t>(len)) {
      LYRIC_OBS_COUNT("storage.fault.enospc");
      return Status::ResourceExhausted(
          "no space left on device (injected ENOSPC) writing '" + path_ +
          "'");
    }
  }
  size_t done = 0;
  const char* in = static_cast<const char*>(buf);
  while (done < len) {
    ssize_t n = ::pwrite(fd_, in + done, len - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", path_);
    }
    done += static_cast<size_t>(n);
  }
  LYRIC_OBS_COUNT_N("storage.io.bytes_written", len);
  return Status::OK();
}

Status File::Append(const void* buf, size_t len, bool crash_accounted) {
  if (fd_ < 0) return Status::Internal("append on closed file");
  LYRIC_ASSIGN_OR_RETURN(uint64_t size, Size());
  size_t effective = len;
  bool crash_after = false;
  if (crash_accounted) {
    int64_t budget = CrashBudget();
    if (budget >= 0) {
      // Burn the budget; when this append crosses it, write only the
      // prefix and die — the torn record the recovery scan must skip.
      int64_t before = g_crash_budget.fetch_sub(static_cast<int64_t>(len),
                                                std::memory_order_relaxed);
      if (before < static_cast<int64_t>(len)) {
        effective = before > 0 ? static_cast<size_t>(before) : 0;
        crash_after = true;
      }
    }
  }
  if (effective > 0) {
    LYRIC_RETURN_NOT_OK(WriteAt(size, buf, effective));
  }
  if (crash_after) {
    // Simulated kill -9: no destructors, no flushes beyond what the
    // kernel already has. 137 = 128 + SIGKILL, what a shell would report.
    ::_exit(137);
  }
  return Status::OK();
}

Status File::Sync() {
  if (fd_ < 0) return Status::Internal("fsync on closed file");
  if (fault::Enabled() && fault::Inject(fault::kSiteStorage)) {
    return InjectedFault("fsync");
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  LYRIC_OBS_COUNT("storage.io.fsyncs");
  return Status::OK();
}

Status File::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::Internal("truncate on closed file");
  if (fault::Enabled() && fault::Inject(fault::kSiteStorage)) {
    return InjectedFault("truncate");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  return Status::OK();
}

Result<uint64_t> File::Size() const {
  if (fd_ < 0) return Status::Internal("size on closed file");
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Errno("lseek", path_);
  return static_cast<uint64_t>(end);
}

Status File::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

Status SyncDirectoryOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    LYRIC_ASSIGN_OR_RETURN(File f, File::OpenReadWrite(tmp));
    // A leftover temp from an earlier interrupted attempt may be longer.
    LYRIC_RETURN_NOT_OK(f.Truncate(0));
    LYRIC_RETURN_NOT_OK(f.WriteAt(0, contents.data(), contents.size()));
    LYRIC_RETURN_NOT_OK(f.Sync());
    LYRIC_RETURN_NOT_OK(f.Close());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  return SyncDirectoryOf(path);
}

}  // namespace storage
}  // namespace lyric
