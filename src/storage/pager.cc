#include "storage/pager.h"

#include "obs/metrics.h"

namespace lyric {
namespace storage {

Result<Pager> Pager::Open(const std::string& path) {
  Pager pager;
  LYRIC_ASSIGN_OR_RETURN(pager.file_, File::OpenReadWrite(path));
  return pager;
}

Status Pager::ReadPage(PageId id, PageBuf* out) const {
  LYRIC_RETURN_NOT_OK(ReadPageRaw(id, out));
  if (!VerifyPage(*out)) {
    LYRIC_OBS_COUNT("storage.page.checksum_failures");
    return Status::DataLoss("page " + std::to_string(id) + " of '" +
                            file_.path() + "' failed checksum verification");
  }
  return Status::OK();
}

Status Pager::ReadPageRaw(PageId id, PageBuf* out) const {
  LYRIC_OBS_COUNT("storage.page.reads");
  return file_.ReadAt(id * kPageSize, out->data(), kPageSize);
}

Status Pager::WritePage(PageId id, PageBuf& page) {
  SealPage(page);
  return WritePageRaw(id, page);
}

Status Pager::WritePageRaw(PageId id, const PageBuf& page) {
  LYRIC_OBS_COUNT("storage.page.writes");
  return file_.WriteAt(id * kPageSize, page.data(), kPageSize);
}

Status Pager::Sync() { return file_.Sync(); }

Result<uint64_t> Pager::PageCountOnDisk() const {
  LYRIC_ASSIGN_OR_RETURN(uint64_t size, file_.Size());
  return size / kPageSize;
}

Status Pager::Close() { return file_.Close(); }

}  // namespace storage
}  // namespace lyric
