#include "storage/btree.h"

#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace lyric {
namespace storage {

namespace {

// Node field offsets from the page start (see btree.h).
constexpr uint32_t kLinkOff = 16;       // leaf next / internal rightmost
constexpr uint32_t kNCellsOff = 24;
constexpr uint32_t kCellStartOff = 26;
constexpr uint32_t kSlotsOff = 28;
constexpr size_t kLeafCellHeader = 14;  // klen u16 | vlen u32 | ovf u64
constexpr size_t kInternalCellHeader = 10;  // child u64 | klen u16

// Overflow page: next u64 | chunk len u32 | data.
constexpr uint32_t kOvfNextOff = 16;
constexpr uint32_t kOvfLenOff = 24;
constexpr uint32_t kOvfDataOff = 28;
constexpr size_t kOvfChunk = kPageSize - kOvfDataOff;

uint64_t GetLink(const PageBuf& p) { return Load64(p.data() + kLinkOff); }
void SetLink(PageBuf& p, uint64_t v) { Store64(p.data() + kLinkOff, v); }
int NCells(const PageBuf& p) { return Load16(p.data() + kNCellsOff); }
void SetNCells(PageBuf& p, int n) {
  Store16(p.data() + kNCellsOff, static_cast<uint16_t>(n));
}
uint16_t CellStart(const PageBuf& p) {
  uint16_t v = Load16(p.data() + kCellStartOff);
  return v == 0 ? static_cast<uint16_t>(kPageSize) : v;  // 0 = fresh page
}
void SetCellStart(PageBuf& p, uint16_t v) {
  Store16(p.data() + kCellStartOff, v);
}
uint16_t Slot(const PageBuf& p, int i) {
  return Load16(p.data() + kSlotsOff + 2 * i);
}
void SetSlot(PageBuf& p, int i, uint16_t v) {
  Store16(p.data() + kSlotsOff + 2 * i, v);
}

size_t CellLenAt(const PageBuf& p, int i) {
  const uint16_t off = Slot(p, i);
  if (GetPageType(p) == PageType::kBTreeLeaf) {
    const uint16_t klen = Load16(p.data() + off);
    const uint32_t vlen = Load32(p.data() + off + 2);
    const uint64_t ovf = Load64(p.data() + off + 6);
    return kLeafCellHeader + klen + (ovf == 0 ? vlen : 0);
  }
  return kInternalCellHeader + Load16(p.data() + off + 8);
}

std::string_view LeafKeyAt(const PageBuf& p, int i) {
  const uint16_t off = Slot(p, i);
  const uint16_t klen = Load16(p.data() + off);
  return {reinterpret_cast<const char*>(p.data() + off + kLeafCellHeader),
          klen};
}
std::string_view InternalKeyAt(const PageBuf& p, int i) {
  const uint16_t off = Slot(p, i);
  const uint16_t klen = Load16(p.data() + off + 8);
  return {reinterpret_cast<const char*>(p.data() + off + kInternalCellHeader),
          klen};
}
PageId InternalChildAt(const PageBuf& p, int i) {
  return Load64(p.data() + Slot(p, i));
}

/// First slot whose key >= `key` (== NCells when all are smaller);
/// `*found` reports an exact match.
int LeafLowerBound(const PageBuf& p, std::string_view key, bool* found) {
  int lo = 0, hi = NCells(p);
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (LeafKeyAt(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo < NCells(p) && LeafKeyAt(p, lo) == key;
  return lo;
}

/// Routing: first cell whose separator >= `key`; NCells means the
/// rightmost child.
int InternalDescendIndex(const PageBuf& p, std::string_view key) {
  int lo = 0, hi = NCells(p);
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (InternalKeyAt(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Structural audit of a node page before its offsets are trusted. The
/// page checksum catches torn writes and bitrot, but a logically-mangled
/// page with a recomputed checksum (or a buggy writer) could otherwise
/// steer slot/length reads outside the 4 KiB buffer. Read paths call
/// this after every Fetch; the O(cells) walk is cache-hot and cheap next
/// to the I/O that produced the page.
Status ValidateNode(const PageBuf& p, PageId id) {
  const PageType type = GetPageType(p);
  if (type != PageType::kBTreeLeaf && type != PageType::kBTreeInternal) {
    return Status::DataLoss("page " + std::to_string(id) +
                            " is not a B-tree node");
  }
  const int n = NCells(p);
  const size_t slots_end = kSlotsOff + 2 * static_cast<size_t>(n);
  const uint16_t cell_start = CellStart(p);
  if (slots_end > cell_start || cell_start > kPageSize) {
    return Status::DataLoss("B-tree page " + std::to_string(id) +
                            " slot directory overlaps its cells");
  }
  for (int i = 0; i < n; ++i) {
    const size_t off = Slot(p, i);
    const size_t header =
        type == PageType::kBTreeLeaf ? kLeafCellHeader : kInternalCellHeader;
    if (off < cell_start || off + header > kPageSize) {
      return Status::DataLoss("B-tree page " + std::to_string(id) +
                              " slot " + std::to_string(i) +
                              " points outside the page");
    }
    size_t klen, body;
    if (type == PageType::kBTreeLeaf) {
      klen = Load16(p.data() + off);
      const uint32_t vlen = Load32(p.data() + off + 2);
      const uint64_t ovf = Load64(p.data() + off + 6);
      body = klen + (ovf == kInvalidPage ? vlen : 0);
    } else {
      klen = Load16(p.data() + off + 8);
      body = klen;
    }
    if (klen == 0 || klen > kMaxKeyLen || off + header + body > kPageSize) {
      return Status::DataLoss("B-tree page " + std::to_string(id) +
                              " cell " + std::to_string(i) +
                              " has an impossible length");
    }
  }
  return Status::OK();
}

size_t FreeSpace(const PageBuf& p) {
  return CellStart(p) - (kSlotsOff + 2 * NCells(p));
}

size_t LiveCellBytes(const PageBuf& p) {
  size_t total = 0;
  for (int i = 0; i < NCells(p); ++i) total += CellLenAt(p, i);
  return total;
}

/// Inserts `cell` at slot `idx`; the caller guarantees room.
void RawInsertCell(PageBuf& p, int idx, const uint8_t* cell, size_t len) {
  const uint16_t start = static_cast<uint16_t>(CellStart(p) - len);
  std::memcpy(p.data() + start, cell, len);
  const int n = NCells(p);
  std::memmove(p.data() + kSlotsOff + 2 * (idx + 1),
               p.data() + kSlotsOff + 2 * idx,
               2 * static_cast<size_t>(n - idx));
  SetSlot(p, idx, start);
  SetNCells(p, n + 1);
  SetCellStart(p, start);
}

/// Drops slot `idx`; the cell body becomes dead space that RebuildPage
/// later reclaims.
void RemoveCell(PageBuf& p, int idx) {
  const int n = NCells(p);
  std::memmove(p.data() + kSlotsOff + 2 * idx,
               p.data() + kSlotsOff + 2 * (idx + 1),
               2 * static_cast<size_t>(n - idx - 1));
  SetNCells(p, n - 1);
}

/// Repacks live cells against the page end, squeezing out dead space.
void RebuildPage(PageBuf& p) {
  const PageBuf scratch = p;
  uint16_t write = static_cast<uint16_t>(kPageSize);
  for (int i = NCells(scratch) - 1; i >= 0; --i) {
    const size_t len = CellLenAt(scratch, i);
    write = static_cast<uint16_t>(write - len);
    std::memcpy(p.data() + write, scratch.data() + Slot(scratch, i), len);
    SetSlot(p, i, write);
  }
  SetCellStart(p, write);
}

/// Makes room for one more cell of `len` bytes, compacting if dead
/// space suffices; false means the node must split.
bool EnsureRoom(PageBuf& p, size_t len) {
  if (FreeSpace(p) >= len + 2) return true;
  const size_t needed =
      kSlotsOff + 2 * static_cast<size_t>(NCells(p) + 1) + LiveCellBytes(p) +
      len;
  if (needed > kPageSize) return false;
  RebuildPage(p);
  return true;
}

struct InternalEntry {
  PageId child;
  std::string key;
};

void DecodeInternal(const PageBuf& p, std::vector<InternalEntry>* entries,
                    PageId* rightmost) {
  entries->clear();
  entries->reserve(NCells(p));
  for (int i = 0; i < NCells(p); ++i) {
    entries->push_back({InternalChildAt(p, i), std::string(InternalKeyAt(p, i))});
  }
  *rightmost = GetLink(p);
}

bool InternalFits(const std::vector<InternalEntry>& entries) {
  size_t total = kSlotsOff + 2 * entries.size();
  for (const InternalEntry& e : entries) {
    total += kInternalCellHeader + e.key.size();
  }
  return total <= kPageSize;
}

void EncodeInternal(PageBuf& p, const std::vector<InternalEntry>& entries,
                    PageId rightmost) {
  InitPage(p, PageType::kBTreeInternal);
  SetLink(p, rightmost);
  uint16_t write = static_cast<uint16_t>(kPageSize);
  for (int i = static_cast<int>(entries.size()) - 1; i >= 0; --i) {
    const InternalEntry& e = entries[i];
    const size_t len = kInternalCellHeader + e.key.size();
    write = static_cast<uint16_t>(write - len);
    Store64(p.data() + write, e.child);
    Store16(p.data() + write + 8, static_cast<uint16_t>(e.key.size()));
    std::memcpy(p.data() + write + kInternalCellHeader, e.key.data(),
                e.key.size());
    SetSlot(p, i, write);
  }
  SetNCells(p, static_cast<int>(entries.size()));
  SetCellStart(p, write);
}

void EncodeLeaf(PageBuf& p, const std::vector<std::string>& cells,
                size_t begin, size_t end, uint64_t next) {
  InitPage(p, PageType::kBTreeLeaf);
  SetLink(p, next);
  uint16_t write = static_cast<uint16_t>(kPageSize);
  for (int i = static_cast<int>(end - begin) - 1; i >= 0; --i) {
    const std::string& c = cells[begin + static_cast<size_t>(i)];
    write = static_cast<uint16_t>(write - c.size());
    std::memcpy(p.data() + write, c.data(), c.size());
    SetSlot(p, i, write);
  }
  SetNCells(p, static_cast<int>(end - begin));
  SetCellStart(p, write);
}

std::string_view CellKeyOf(const std::string& cell) {
  const uint16_t klen =
      Load16(reinterpret_cast<const uint8_t*>(cell.data()));
  return {cell.data() + kLeafCellHeader, klen};
}

/// Split point: smallest prefix holding at least half the bytes, with
/// at least one cell on each side.
size_t ByteSplitPoint(const std::vector<std::string>& cells) {
  size_t total = 0;
  for (const std::string& c : cells) total += c.size() + 2;
  size_t acc = 0, mid = 0;
  while (mid < cells.size() && acc < total / 2) {
    acc += cells[mid].size() + 2;
    ++mid;
  }
  if (mid == 0) mid = 1;
  if (mid >= cells.size()) mid = cells.size() - 1;
  return mid;
}

}  // namespace

Result<bool> BTree::Put(PageId* root, std::string_view key,
                        std::string_view value) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return Status::InvalidArgument("btree key must be 1.." +
                                   std::to_string(kMaxKeyLen) +
                                   " bytes, got " +
                                   std::to_string(key.size()));
  }
  if (*root == kInvalidPage) {
    LYRIC_ASSIGN_OR_RETURN(PageRef leaf,
                           alloc_->Allocate(PageType::kBTreeLeaf));
    *root = leaf.id();
  }
  InsertResult r;
  LYRIC_RETURN_NOT_OK(InsertRec(*root, key, value, &r));
  if (r.split) {
    LYRIC_OBS_COUNT("storage.btree.root_splits");
    LYRIC_ASSIGN_OR_RETURN(PageRef top,
                           alloc_->Allocate(PageType::kBTreeInternal));
    std::vector<InternalEntry> entries;
    entries.push_back({*root, std::move(r.left_max)});
    EncodeInternal(top.buf(), entries, r.right);
    top.MarkDirty();
    *root = top.id();
  }
  return r.replaced;
}

Status BTree::InsertRec(PageId page_id, std::string_view key,
                        std::string_view value, InsertResult* out) {
  LYRIC_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(page_id));
  const PageType type = GetPageType(page.buf());
  if (type == PageType::kBTreeLeaf) {
    return InsertIntoLeaf(page, key, value, out);
  }
  if (type != PageType::kBTreeInternal) {
    return Status::DataLoss("page " + std::to_string(page_id) +
                            " is not a B-tree node (type " +
                            std::to_string(static_cast<int>(type)) + ")");
  }
  const int n = NCells(page.buf());
  const int idx = InternalDescendIndex(page.buf(), key);
  const PageId child =
      idx < n ? InternalChildAt(page.buf(), idx) : GetLink(page.buf());
  if (child == kInvalidPage) {
    return Status::DataLoss("dangling child link in B-tree page " +
                            std::to_string(page_id));
  }
  InsertResult sub;
  LYRIC_RETURN_NOT_OK(InsertRec(child, key, value, &sub));
  out->replaced = sub.replaced;
  if (!sub.split) return Status::OK();

  // The child split into child (lower, max = sub.left_max) and
  // sub.right (upper, keeping the child's old upper bound).
  LYRIC_OBS_COUNT("storage.btree.splits");
  std::vector<InternalEntry> entries;
  PageId rightmost;
  DecodeInternal(page.buf(), &entries, &rightmost);
  if (idx < n) {
    entries[static_cast<size_t>(idx)].child = sub.right;
    entries.insert(entries.begin() + idx, {child, std::move(sub.left_max)});
  } else {
    rightmost = sub.right;
    entries.push_back({child, std::move(sub.left_max)});
  }
  if (InternalFits(entries)) {
    EncodeInternal(page.buf(), entries, rightmost);
    page.MarkDirty();
    return Status::OK();
  }

  // This internal node overflows too: split it, consuming the middle
  // entry (its child becomes the left node's rightmost, its key the
  // separator handed up).
  size_t mid = entries.size() / 2;
  if (mid == 0) mid = 1;
  if (mid + 1 >= entries.size()) mid = entries.size() - 2;
  LYRIC_ASSIGN_OR_RETURN(PageRef right,
                         alloc_->Allocate(PageType::kBTreeInternal));
  std::vector<InternalEntry> left_entries(entries.begin(),
                                          entries.begin() + mid);
  std::vector<InternalEntry> right_entries(entries.begin() + mid + 1,
                                           entries.end());
  const PageId left_rightmost = entries[mid].child;
  out->split = true;
  out->right = right.id();
  out->left_max = std::move(entries[mid].key);
  EncodeInternal(page.buf(), left_entries, left_rightmost);
  page.MarkDirty();
  EncodeInternal(right.buf(), right_entries, rightmost);
  right.MarkDirty();
  return Status::OK();
}

Status BTree::InsertIntoLeaf(PageRef& leaf, std::string_view key,
                             std::string_view value, InsertResult* out) {
  PageBuf& p = leaf.buf();
  bool found = false;
  const int idx = LeafLowerBound(p, key, &found);
  if (found) {
    LYRIC_RETURN_NOT_OK(FreeCellOverflow(p, idx));
    RemoveCell(p, idx);
    out->replaced = true;
  }
  std::string cell;
  LYRIC_RETURN_NOT_OK(BuildLeafCell(key, value, &cell));
  if (EnsureRoom(p, cell.size())) {
    RawInsertCell(p, idx, reinterpret_cast<const uint8_t*>(cell.data()),
                  cell.size());
    leaf.MarkDirty();
    return Status::OK();
  }

  // Split: redistribute every cell (new one included) by bytes. Cell
  // bodies cap at kMaxInlineCell, so each half is guaranteed to fit.
  LYRIC_OBS_COUNT("storage.btree.splits");
  std::vector<std::string> cells;
  cells.reserve(static_cast<size_t>(NCells(p)) + 1);
  for (int i = 0; i < NCells(p); ++i) {
    const uint16_t off = Slot(p, i);
    cells.emplace_back(reinterpret_cast<const char*>(p.data() + off),
                       CellLenAt(p, i));
  }
  cells.insert(cells.begin() + idx, std::move(cell));
  const size_t mid = ByteSplitPoint(cells);
  LYRIC_ASSIGN_OR_RETURN(PageRef right,
                         alloc_->Allocate(PageType::kBTreeLeaf));
  const uint64_t old_next = GetLink(p);
  EncodeLeaf(p, cells, 0, mid, right.id());
  EncodeLeaf(right.buf(), cells, mid, cells.size(), old_next);
  leaf.MarkDirty();
  right.MarkDirty();
  out->split = true;
  out->right = right.id();
  out->left_max = std::string(CellKeyOf(cells[mid - 1]));
  return Status::OK();
}

Status BTree::BuildLeafCell(std::string_view key, std::string_view value,
                            std::string* cell) {
  const bool inline_ok =
      kLeafCellHeader + key.size() + value.size() <= kMaxInlineCell;
  uint64_t ovf = kInvalidPage;
  if (!inline_ok) {
    LYRIC_ASSIGN_OR_RETURN(ovf, WriteOverflow(value));
  }
  cell->resize(kLeafCellHeader + key.size() +
               (inline_ok ? value.size() : 0));
  uint8_t* b = reinterpret_cast<uint8_t*>(cell->data());
  Store16(b, static_cast<uint16_t>(key.size()));
  Store32(b + 2, static_cast<uint32_t>(value.size()));
  Store64(b + 6, ovf);
  std::memcpy(b + kLeafCellHeader, key.data(), key.size());
  if (inline_ok) {
    std::memcpy(b + kLeafCellHeader + key.size(), value.data(),
                value.size());
  }
  return Status::OK();
}

Result<PageId> BTree::WriteOverflow(std::string_view value) {
  LYRIC_OBS_COUNT("storage.btree.overflow_chains");
  // Build the chain back to front so each page knows its successor.
  const size_t nchunks = (value.size() + kOvfChunk - 1) / kOvfChunk;
  PageId next = kInvalidPage;
  for (size_t i = nchunks; i-- > 0;) {
    LYRIC_ASSIGN_OR_RETURN(PageRef page,
                           alloc_->Allocate(PageType::kOverflow));
    const size_t off = i * kOvfChunk;
    const size_t len = std::min(kOvfChunk, value.size() - off);
    Store64(page.buf().data() + kOvfNextOff, next);
    Store32(page.buf().data() + kOvfLenOff, static_cast<uint32_t>(len));
    std::memcpy(page.buf().data() + kOvfDataOff, value.data() + off, len);
    page.MarkDirty();
    next = page.id();
  }
  return next;
}

Status BTree::ReadOverflow(PageId head, uint64_t total_len,
                           std::string* out) {
  out->clear();
  out->reserve(total_len);
  PageId cur = head;
  while (cur != kInvalidPage) {
    LYRIC_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(cur));
    if (GetPageType(page.buf()) != PageType::kOverflow) {
      return Status::DataLoss("overflow chain page " + std::to_string(cur) +
                              " has wrong type");
    }
    const uint32_t len = Load32(page.buf().data() + kOvfLenOff);
    // len == 0 would let a cyclic chain spin forever; every legitimate
    // chunk carries at least one byte.
    if (len == 0 || len > kOvfChunk || out->size() + len > total_len) {
      return Status::DataLoss("overflow chain at page " +
                              std::to_string(cur) +
                              " disagrees with the recorded value length");
    }
    out->append(
        reinterpret_cast<const char*>(page.buf().data() + kOvfDataOff), len);
    cur = Load64(page.buf().data() + kOvfNextOff);
  }
  if (out->size() != total_len) {
    return Status::DataLoss("overflow chain ended " +
                            std::to_string(total_len - out->size()) +
                            " bytes short");
  }
  return Status::OK();
}

Status BTree::FreeOverflow(PageId head) {
  PageId cur = head;
  while (cur != kInvalidPage) {
    PageId next;
    {
      LYRIC_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(cur));
      next = Load64(page.buf().data() + kOvfNextOff);
    }
    LYRIC_RETURN_NOT_OK(alloc_->Free(cur));
    cur = next;
  }
  return Status::OK();
}

Status BTree::FreeCellOverflow(const PageBuf& page, int idx) {
  const uint16_t off = Slot(page, idx);
  const uint64_t ovf = Load64(page.data() + off + 6);
  if (ovf == kInvalidPage) return Status::OK();
  return FreeOverflow(ovf);
}

Result<PageRef> BTree::DescendToLeaf(PageId root, std::string_view key) {
  PageId cur = root;
  for (int depth = 0; depth < 64; ++depth) {
    LYRIC_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(cur));
    LYRIC_RETURN_NOT_OK(ValidateNode(page.buf(), cur));
    const PageType type = GetPageType(page.buf());
    if (type == PageType::kBTreeLeaf) return page;
    const int n = NCells(page.buf());
    const int idx = InternalDescendIndex(page.buf(), key);
    cur = idx < n ? InternalChildAt(page.buf(), idx) : GetLink(page.buf());
    if (cur == kInvalidPage) {
      return Status::DataLoss("dangling child link in B-tree page " +
                              std::to_string(page.id()));
    }
  }
  return Status::DataLoss("B-tree deeper than 64 levels — cycle suspected");
}

Result<std::string> BTree::Get(PageId root, std::string_view key) {
  if (root == kInvalidPage) {
    return Status::NotFound("key not present (empty tree)");
  }
  LYRIC_ASSIGN_OR_RETURN(PageRef leaf, DescendToLeaf(root, key));
  bool found = false;
  const int idx = LeafLowerBound(leaf.buf(), key, &found);
  if (!found) return Status::NotFound("key not present");
  const uint16_t off = Slot(leaf.buf(), idx);
  const uint8_t* b = leaf.buf().data() + off;
  const uint16_t klen = Load16(b);
  const uint32_t vlen = Load32(b + 2);
  const uint64_t ovf = Load64(b + 6);
  if (ovf != kInvalidPage) {
    std::string out;
    LYRIC_RETURN_NOT_OK(ReadOverflow(ovf, vlen, &out));
    return out;
  }
  return std::string(
      reinterpret_cast<const char*>(b + kLeafCellHeader + klen), vlen);
}

Result<bool> BTree::Delete(PageId root, std::string_view key) {
  if (root == kInvalidPage) return false;
  LYRIC_ASSIGN_OR_RETURN(PageRef leaf, DescendToLeaf(root, key));
  bool found = false;
  const int idx = LeafLowerBound(leaf.buf(), key, &found);
  if (!found) return false;
  LYRIC_RETURN_NOT_OK(FreeCellOverflow(leaf.buf(), idx));
  RemoveCell(leaf.buf(), idx);
  leaf.MarkDirty();
  return true;
}

Status BTree::Scan(
    PageId root, std::string_view lower,
    const std::function<Result<bool>(std::string_view key,
                                     std::string_view value)>& fn) {
  if (root == kInvalidPage) return Status::OK();
  LYRIC_ASSIGN_OR_RETURN(PageRef leaf, DescendToLeaf(root, lower));
  bool found = false;
  int idx = LeafLowerBound(leaf.buf(), lower, &found);
  // Keys must be strictly increasing across the whole scan; a repeat or
  // regression means a mangled leaf chain (e.g. a cycle) — stop with a
  // typed error instead of looping or double-reporting records.
  std::string prev_key;
  for (;;) {
    const int n = NCells(leaf.buf());
    for (; idx < n; ++idx) {
      const uint16_t off = Slot(leaf.buf(), idx);
      const uint8_t* b = leaf.buf().data() + off;
      const uint16_t klen = Load16(b);
      const uint32_t vlen = Load32(b + 2);
      const uint64_t ovf = Load64(b + 6);
      const std::string_view key(
          reinterpret_cast<const char*>(b + kLeafCellHeader), klen);
      if (!prev_key.empty() && key <= prev_key) {
        return Status::DataLoss("B-tree leaf chain out of order at page " +
                                std::to_string(leaf.id()) +
                                " — cycle or cross-link suspected");
      }
      prev_key.assign(key.data(), key.size());
      std::string spilled;
      std::string_view value;
      if (ovf != kInvalidPage) {
        LYRIC_RETURN_NOT_OK(ReadOverflow(ovf, vlen, &spilled));
        value = spilled;
      } else {
        value = std::string_view(
            reinterpret_cast<const char*>(b + kLeafCellHeader + klen), vlen);
      }
      LYRIC_ASSIGN_OR_RETURN(bool keep_going, fn(key, value));
      if (!keep_going) return Status::OK();
    }
    const PageId next = GetLink(leaf.buf());
    if (next == kInvalidPage) return Status::OK();
    LYRIC_ASSIGN_OR_RETURN(PageRef next_leaf, pool_->Fetch(next));
    LYRIC_RETURN_NOT_OK(ValidateNode(next_leaf.buf(), next));
    if (GetPageType(next_leaf.buf()) != PageType::kBTreeLeaf) {
      return Status::DataLoss("leaf chain links to non-leaf page " +
                              std::to_string(next));
    }
    leaf = std::move(next_leaf);
    idx = 0;
  }
}

}  // namespace storage
}  // namespace lyric
