// Write-ahead log: redo-only, full-page images, group commit.
//
// File layout (docs/STORAGE.md):
//
//   header (24 bytes): magic "LYRCWAL\n" (u64) | base LSN (u64) |
//                      crc32c of the first 16 bytes (u32) | zero (u32)
//   records:           crc (u32) | payload length (u32) | lsn (u64) |
//                      type (u8) | zero[3] | payload
//
// The record crc covers everything after itself (length, lsn, type,
// padding, payload), so a torn append — the tail a kill -9 leaves — is
// detected at the first record whose bytes do not add up. Two record
// types exist: kPageImage (u64 page id + the sealed 4 KiB image) and
// kCommit (u64 image count). A transaction is the run of page images
// since the previous commit record plus its own commit record; replay
// applies a transaction's images only when its commit record is intact,
// so recovery lands exactly on the last durable commit.
//
// Durability: Append only buffers into the OS file; Commit is not
// durable until SyncTo(lsn) returns. SyncTo implements group commit
// (leader/follower): the first waiter becomes the leader, releases the
// lock, fsyncs once, and wakes everyone whose records the sync covered —
// concurrent committers share one fsync (counted in
// storage.wal.group_commit_riders). A failed fsync poisons the log
// (sticky error): the kernel may have dropped dirty pages and "retry"
// would report durability that does not exist (the PostgreSQL fsyncgate
// lesson); the owning store reopens instead.

#ifndef LYRIC_STORAGE_WAL_H_
#define LYRIC_STORAGE_WAL_H_

#include <functional>
#include <string>

#include "storage/file_io.h"
#include "storage/page.h"
#include "util/sync.h"

namespace lyric {
namespace storage {

class Wal {
 public:
  /// Opens (creating/initializing if absent or empty) the log at `path`.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// Appends a page-image record; the image must already be sealed.
  /// Returns the record's LSN. Not durable until SyncTo.
  Result<uint64_t> AppendPageImage(PageId id, const PageBuf& image)
      LYRIC_EXCLUDES(mu_);

  /// Appends a commit record covering the preceding `image_count` page
  /// images. Returns its LSN.
  Result<uint64_t> AppendCommit(uint64_t image_count) LYRIC_EXCLUDES(mu_);

  /// Blocks until every record up to `lsn` is fsynced (group commit).
  Status SyncTo(uint64_t lsn) LYRIC_EXCLUDES(mu_);

  /// Empties the log after a checkpoint: rewrites the header with
  /// `next_lsn` as the new base and truncates everything else, fsynced.
  Status Reset(uint64_t next_lsn) LYRIC_EXCLUDES(mu_);

  Result<uint64_t> SizeBytes() LYRIC_EXCLUDES(mu_);
  /// LSN the next record will get.
  uint64_t NextLsn() LYRIC_EXCLUDES(mu_);

  /// What a replay scan found.
  struct ReplayStats {
    uint64_t committed_txns = 0;     // commits applied
    uint64_t images_applied = 0;     // page images written back
    uint64_t last_commit_lsn = 0;    // 0 when none
    uint64_t next_lsn = 1;           // base for the post-recovery log
    uint64_t valid_bytes = 0;        // prefix that parsed clean
    uint64_t torn_tail_bytes = 0;    // ignored tail after the last
                                     // intact commit (torn crash debris)
  };

  /// Scans the log at `path` and calls `apply(page, image)` for every
  /// page image of every committed transaction, in commit order (later
  /// commits overwrite earlier images of the same page). A missing file
  /// is an empty log. A corrupt header is kDataLoss; a corrupt or torn
  /// record merely ends the scan — that is the expected kill -9 tail.
  static Result<ReplayStats> Replay(
      const std::string& path,
      const std::function<Status(PageId, const PageBuf&)>& apply);

  // Layout constants (tests and the fuzz harness build files by hand).
  static constexpr size_t kHeaderSize = 24;
  static constexpr size_t kRecordHeaderSize = 20;

 private:
  enum RecordType : uint8_t { kPageImage = 1, kCommit = 2 };

  Wal() = default;

  Status AppendRecordLocked(RecordType type, const uint8_t* payload,
                            size_t len, uint64_t* lsn_out)
      LYRIC_REQUIRES(mu_);

  sync::Mutex mu_{sync::LockRank::kWal, "wal"};
  File file_ LYRIC_GUARDED_BY(mu_);
  uint64_t next_lsn_ LYRIC_GUARDED_BY(mu_) = 1;
  uint64_t appended_lsn_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t synced_lsn_ LYRIC_GUARDED_BY(mu_) = 0;
  bool sync_in_flight_ LYRIC_GUARDED_BY(mu_) = false;
  /// Sticky: set on the first fsync/append failure, returned ever after.
  Status sticky_error_ LYRIC_GUARDED_BY(mu_);
  sync::CondVar sync_done_;
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_WAL_H_
