#include "storage/paged_store.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/serializer.h"

namespace lyric {
namespace storage {

namespace {

/// Sequence-numbered record key ("C\x1f00000007") — zero-padded so key
/// order is registration order.
std::string SeqKey(char prefix, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%c\x1f%08llu", prefix,
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Renders `db` as the full record map the store should hold — the one
/// source of truth for the key scheme, shared by ImportDatabase (write
/// everything into an empty store) and SyncDatabase (diff against a
/// live store).
Status BuildRecords(const Database& db,
                    std::map<std::string, std::string>* out) {
  uint64_t seq = 0;
  for (const std::string& name : db.schema().ClassNames()) {
    LYRIC_ASSIGN_OR_RETURN(const ClassDef* def, db.schema().GetClass(name));
    LYRIC_ASSIGN_OR_RETURN(std::string text, Serializer::ClassText(*def));
    (*out)[SeqKey('C', seq++)] = std::move(text);
  }
  for (const auto& [oid, rec] : db.objects()) {
    const std::string oid_text = oid.ToString();
    (*out)[std::string("O\x1f") + oid_text] = rec.class_name;
    for (const auto& [attr, value] : rec.attrs) {
      LYRIC_ASSIGN_OR_RETURN(std::string vt, Serializer::ValueText(db, value));
      (*out)["A\x1f" + oid_text + "\x1f" + attr] = std::move(vt);
    }
  }
  seq = 0;
  for (const auto& [oid, classes] : db.extra_instance_of()) {
    for (const std::string& cls : classes) {
      LYRIC_ASSIGN_OR_RETURN(std::string line,
                             Serializer::InstanceOfLine(db, oid, cls));
      (*out)[SeqKey('I', seq++)] = std::move(line);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedStore>> PagedStore::Open(
    const StoreOptions& opts) {
  static obs::Histogram& recovery_ns =
      obs::Registry::Global().GetHistogram("storage.recovery_ns");
  auto store = std::unique_ptr<PagedStore>(new PagedStore(opts));
  sync::MutexLock lock(store->mu_);
  LYRIC_ASSIGN_OR_RETURN(Pager pager, Pager::Open(opts.path));
  LYRIC_ASSIGN_OR_RETURN(uint64_t on_disk, pager.PageCountOnDisk());
  if (on_disk == 0) {
    // Brand-new store: page 0 gets a fresh meta page, durably, before
    // anything else can reference it.
    MetaPage fresh;
    PageBuf page;
    fresh.EncodeTo(page);
    LYRIC_RETURN_NOT_OK(pager.WritePage(0, page));
    LYRIC_RETURN_NOT_OK(pager.Sync());
  }

  // Redo recovery: replay committed WAL transactions into the data file
  // before any page is interpreted, then truncate the log. Deterministic
  // — a second open after a crash mid-recovery replays the same images.
  const std::string wal_path = WalPathFor(opts.path);
  Wal::ReplayStats stats;
  {
    obs::ScopedHistogramTimer timer(recovery_ns);
    LYRIC_ASSIGN_OR_RETURN(
        stats,
        Wal::Replay(wal_path, [&pager](PageId id, const PageBuf& image) {
          return pager.WritePageRaw(id, image);
        }));
    if (stats.images_applied > 0) {
      LYRIC_RETURN_NOT_OK(pager.Sync());
    }
  }
  LYRIC_OBS_COUNT_N("storage.recovery.replayed_txns", stats.committed_txns);
  LYRIC_OBS_COUNT_N("storage.recovery.images_applied", stats.images_applied);
  LYRIC_OBS_COUNT_N("storage.recovery.torn_tail_bytes",
                    stats.torn_tail_bytes);
  LYRIC_ASSIGN_OR_RETURN(store->wal_, Wal::Open(wal_path));
  LYRIC_RETURN_NOT_OK(store->wal_->Reset(stats.next_lsn));

  PageBuf meta_page;
  LYRIC_RETURN_NOT_OK(pager.ReadPage(0, &meta_page));
  if (!store->meta_.DecodeFrom(meta_page)) {
    return Status::DataLoss("'" + opts.path +
                            "' is not a lyric paged store (bad meta page)");
  }
  store->pager_ = std::make_unique<Pager>(std::move(pager));
  store->pool_ =
      std::make_unique<BufferPool>(store->pager_.get(), opts.pool_pages);
  // The private-base upcast is only accessible here, inside the class.
  PageAllocator* alloc = store.get();
  store->tree_ = std::make_unique<BTree>(store->pool_.get(), alloc);
  store->recovery_ = {stats.committed_txns, stats.images_applied,
                      stats.torn_tail_bytes};
  LYRIC_OBS_COUNT("storage.store.opens");
  return store;
}

PagedStore::~PagedStore() { static_cast<void>(Close()); }

Status PagedStore::MaybePoison(Status st) {
  if (st.ok() || st.IsInvalidArgument() || st.IsNotFound()) return st;
  if (poisoned_.ok()) {
    poisoned_ = st;
    LYRIC_OBS_COUNT("storage.store.poisoned");
  }
  return st;
}

Result<PageRef> PagedStore::Allocate(PageType type) {
  mu_.AssertHeld();
  if (meta_.free_head != kInvalidPage) {
    const PageId id = meta_.free_head;
    PageId next;
    {
      LYRIC_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(id));
      if (GetPageType(page.buf()) != PageType::kFree) {
        return Status::DataLoss("free-list page " + std::to_string(id) +
                                " is not marked free");
      }
      next = Load64(page.buf().data() + kPageHeaderSize);
    }
    LYRIC_ASSIGN_OR_RETURN(PageRef fresh, pool_->CreateZeroed(id, type));
    meta_.free_head = next;
    LYRIC_OBS_COUNT("storage.page.freelist_reuse");
    return fresh;
  }
  const PageId id = meta_.page_count++;
  LYRIC_OBS_COUNT("storage.page.allocated");
  return pool_->CreateZeroed(id, type);
}

Status PagedStore::Free(PageId id) {
  mu_.AssertHeld();
  LYRIC_ASSIGN_OR_RETURN(PageRef page,
                         pool_->CreateZeroed(id, PageType::kFree));
  Store64(page.buf().data() + kPageHeaderSize, meta_.free_head);
  page.MarkDirty();
  meta_.free_head = id;
  LYRIC_OBS_COUNT("storage.page.freed");
  return Status::OK();
}

Status PagedStore::Put(std::string_view key, std::string_view value) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return PutLocked(key, value);
}

Status PagedStore::PutLocked(std::string_view key, std::string_view value) {
  PageId root = meta_.btree_root;
  auto replaced_or = tree_->Put(&root, key, value);
  if (!replaced_or.ok()) return MaybePoison(replaced_or.status());
  meta_.btree_root = root;
  if (!replaced_or.value()) ++meta_.record_count;
  LYRIC_OBS_COUNT("storage.store.puts");
  return Status::OK();
}

Result<std::string> PagedStore::Get(std::string_view key) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return tree_->Get(meta_.btree_root, key);
}

Status PagedStore::Delete(std::string_view key) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return DeleteLocked(key);
}

Status PagedStore::DeleteLocked(std::string_view key) {
  auto existed_or = tree_->Delete(meta_.btree_root, key);
  if (!existed_or.ok()) return MaybePoison(existed_or.status());
  if (existed_or.value()) {
    --meta_.record_count;
    LYRIC_OBS_COUNT("storage.store.deletes");
  }
  return Status::OK();
}

Status PagedStore::Scan(
    std::string_view lower,
    const std::function<Result<bool>(std::string_view, std::string_view)>&
        fn) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return tree_->Scan(meta_.btree_root, lower, fn);
}

Status PagedStore::Commit() {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return CommitLocked();
}

Status PagedStore::CommitLocked() {
  static obs::Counter& commits =
      obs::Registry::Global().GetCounter("storage.commit.count");
  static obs::Histogram& commit_ns =
      obs::Registry::Global().GetHistogram("storage.commit_ns");
  static obs::Histogram& commit_pages =
      obs::Registry::Global().GetHistogram("storage.commit.pages");
  if (!pool_->HasUnlogged()) return Status::OK();
  obs::ScopedHistogramTimer timer(commit_ns);

  // Refresh the meta page: root, free list and record count move only
  // here. committed_lsn is the LSN the commit record below will get —
  // predictable because the engine lock makes this store single-writer.
  {
    LYRIC_ASSIGN_OR_RETURN(PageRef meta_frame, pool_->Fetch(0));
    meta_frame.MarkDirty();
  }
  const size_t n_images = pool_->SnapshotUnlogged().size();
  const uint64_t predicted = wal_->NextLsn() + n_images;
  {
    LYRIC_ASSIGN_OR_RETURN(PageRef meta_frame, pool_->Fetch(0));
    meta_.committed_lsn = predicted;
    meta_.EncodeTo(meta_frame.buf());
    meta_frame.MarkDirty();
  }

  const auto snapshot = pool_->SnapshotUnlogged();
  for (const auto& [id, image] : snapshot) {
    auto lsn_or = wal_->AppendPageImage(id, image);
    if (!lsn_or.ok()) return MaybePoison(lsn_or.status());
  }
  auto commit_or = wal_->AppendCommit(snapshot.size());
  if (!commit_or.ok()) return MaybePoison(commit_or.status());
  if (commit_or.value() != predicted) {
    return MaybePoison(Status::Internal(
        "commit LSN drifted from prediction (" +
        std::to_string(commit_or.value()) + " vs " +
        std::to_string(predicted) + ") — concurrent WAL writer?"));
  }
  if (opts_.sync_commits) {
    Status st = wal_->SyncTo(commit_or.value());
    if (!st.ok()) return MaybePoison(st);
  }
  // Only now — images durable in the WAL — may these frames reach the
  // data file (write-ahead rule).
  pool_->MarkLogged(snapshot);
  commits.Increment();
  commit_pages.Record(snapshot.size());
  return Status::OK();
}

Status PagedStore::Checkpoint() {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  return CheckpointLocked();
}

Status PagedStore::CheckpointLocked() {
  static obs::Counter& checkpoints =
      obs::Registry::Global().GetCounter("storage.checkpoint.count");
  static obs::Histogram& checkpoint_ns =
      obs::Registry::Global().GetHistogram("storage.checkpoint_ns");
  obs::ScopedHistogramTimer timer(checkpoint_ns);
  LYRIC_RETURN_NOT_OK(CommitLocked());
  Status st = pool_->FlushDirty();
  if (!st.ok()) return MaybePoison(st);
  st = pager_->Sync();
  if (!st.ok()) return MaybePoison(st);
  // Every committed image is now durably in the data file; the log can
  // start over.
  st = wal_->Reset(wal_->NextLsn());
  if (!st.ok()) return MaybePoison(st);
  checkpoints.Increment();
  return Status::OK();
}

Status PagedStore::Close() {
  sync::MutexLock lock(mu_);
  if (closed_ || pager_ == nullptr) {
    closed_ = true;
    return Status::OK();
  }
  Status st = poisoned_.ok() ? CheckpointLocked() : poisoned_;
  closed_ = true;
  Status close_st = pager_->Close();
  return st.ok() ? close_st : st;
}

Status PagedStore::ImportDatabase(const Database& db) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  if (meta_.record_count != 0) {
    return Status::InvalidArgument(
        "ImportDatabase requires an empty store; '" + opts_.path +
        "' holds " + std::to_string(meta_.record_count) + " records");
  }
  std::map<std::string, std::string> records;
  LYRIC_RETURN_NOT_OK(BuildRecords(db, &records));
  for (const auto& [key, value] : records) {
    LYRIC_RETURN_NOT_OK(PutLocked(key, value));
  }
  LYRIC_OBS_COUNT("storage.store.imports");
  return CommitLocked();
}

Status PagedStore::SyncDatabase(const Database& db) {
  static obs::Histogram& sync_ns =
      obs::Registry::Global().GetHistogram("storage.sync_db_ns");
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  obs::ScopedHistogramTimer timer(sync_ns);
  std::map<std::string, std::string> desired;
  LYRIC_RETURN_NOT_OK(BuildRecords(db, &desired));
  std::map<std::string, std::string> current;
  {
    Status st = tree_->Scan(
        meta_.btree_root, "",
        [&](std::string_view key, std::string_view value) -> Result<bool> {
          current.emplace(std::string(key), std::string(value));
          return true;
        });
    if (!st.ok()) return MaybePoison(st);
  }
  bool changed = false;
  for (const auto& [key, value] : desired) {
    auto it = current.find(key);
    if (it != current.end() && it->second == value) continue;
    LYRIC_RETURN_NOT_OK(PutLocked(key, value));
    changed = true;
  }
  for (const auto& [key, value] : current) {
    static_cast<void>(value);
    if (desired.count(key) != 0) continue;
    LYRIC_RETURN_NOT_OK(DeleteLocked(key));
    changed = true;
  }
  if (!changed) return Status::OK();
  LYRIC_OBS_COUNT("storage.store.syncs");
  return CommitLocked();
}

Status PagedStore::ExportToDatabase(Database* db) {
  sync::MutexLock lock(mu_);
  LYRIC_RETURN_NOT_OK(poisoned_);
  std::string classes;
  std::string instances;
  std::map<std::string, std::string> obj_class;
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      obj_attrs;
  LYRIC_RETURN_NOT_OK(tree_->Scan(
      meta_.btree_root, "",
      [&](std::string_view key, std::string_view value) -> Result<bool> {
        if (key.size() < 2 || key[1] != '\x1f') {
          return Status::DataLoss("malformed record key in '" + opts_.path +
                                  "'");
        }
        switch (key[0]) {
          case 'A': {
            const size_t sep = key.rfind('\x1f');
            if (sep < 2) {
              return Status::DataLoss("malformed attribute key");
            }
            obj_attrs[std::string(key.substr(2, sep - 2))].emplace_back(
                std::string(key.substr(sep + 1)), std::string(value));
            break;
          }
          case 'C':
            classes.append(value);
            break;
          case 'I':
            instances.append(value);
            break;
          case 'O':
            obj_class.emplace(std::string(key.substr(2)),
                              std::string(value));
            break;
          default:
            return Status::DataLoss(
                "unknown record key prefix '" +
                std::string(1, key[0]) + "' in '" + opts_.path + "'");
        }
        return true;
      }));

  std::ostringstream out;
  out << "-- lyric database dump v1\n" << classes;
  for (const auto& [oid_text, cls] : obj_class) {
    out << "OBJECT " << oid_text << " => " << cls << " [\n";
    auto it = obj_attrs.find(oid_text);
    if (it != obj_attrs.end()) {
      for (const auto& [attr, vt] : it->second) {
        out << "  " << attr << " = " << vt << ";\n";
      }
      obj_attrs.erase(it);
    }
    out << "]\n";
  }
  if (!obj_attrs.empty()) {
    return Status::DataLoss("attribute records for unknown object '" +
                            obj_attrs.begin()->first + "' in '" +
                            opts_.path + "'");
  }
  out << instances;
  LYRIC_OBS_COUNT("storage.store.exports");
  return Serializer::LoadDatabase(out.str(), db);
}

uint64_t PagedStore::RecordCount() {
  sync::MutexLock lock(mu_);
  return meta_.record_count;
}

bool PagedStore::HasUncommitted() {
  sync::MutexLock lock(mu_);
  return pool_ != nullptr && pool_->HasUnlogged();
}

Status PagedStore::poison_status() {
  sync::MutexLock lock(mu_);
  return poisoned_;
}

}  // namespace storage
}  // namespace lyric
