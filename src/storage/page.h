// On-disk page format for the paged CST store (docs/STORAGE.md).
//
// The data file is an array of fixed-size pages. Every page opens with a
// 16-byte header:
//
//   bytes 0..3   crc32c of bytes [4, kPageSize)  (little-endian)
//   byte  4      page type (PageType)
//   bytes 5..7   reserved (zero)
//   bytes 8..15  page LSN: the WAL sequence number of the commit that
//                last wrote this page (little-endian u64)
//
// The checksum makes torn or bit-rotted pages detectable: ReadPage
// recomputes it and surfaces a mismatch as a typed kDataLoss status.
// Recovery repairs any such page whose full image still sits in the WAL;
// anything else is reported, never silently patched.
//
// Page 0 is the meta page (MetaPage below): file magic, geometry, the
// B-tree root, the free-list head and the durable commit LSN. All
// integers in page bodies are little-endian, encoded through the
// Store/Load helpers so the format is identical across hosts.

#ifndef LYRIC_STORAGE_PAGE_H_
#define LYRIC_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace lyric {
namespace storage {

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageHeaderSize = 16;
/// Usable payload bytes per page.
inline constexpr uint32_t kPagePayload = kPageSize - kPageHeaderSize;

/// Page 0 magic: "LYRCPG1\n".
inline constexpr uint64_t kDataMagic = 0x0A31475043525941ull;
/// WAL file magic: "LYRCWAL\n".
inline constexpr uint64_t kWalMagic = 0x0A4C415743525941ull;

using PageId = uint64_t;
/// PageId 0 is the meta page, so 0 doubles as "no page" in links.
inline constexpr PageId kInvalidPage = 0;

enum class PageType : uint8_t {
  kMeta = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
  kOverflow = 4,
  kFree = 5,
};

/// An in-memory page image.
using PageBuf = std::array<uint8_t, kPageSize>;

// -- little-endian scalar codecs -------------------------------------------

inline void Store16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void Store32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void Store64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint16_t Load16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t Load32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline uint64_t Load64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// CRC-32C (Castagnoli), the checksum RocksDB/ext4 use; software
/// table-driven implementation, ~1 byte/cycle — noise next to the fsync
/// this engine pays per commit.
class Crc32c {
 public:
  static uint32_t Compute(const uint8_t* data, size_t len) {
    static const Table table;
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i) {
      crc = table.t[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
  }

 private:
  struct Table {
    uint32_t t[256];
    Table() {
      constexpr uint32_t kPoly = 0x82F63B78u;  // reversed Castagnoli
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
          c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        }
        t[i] = c;
      }
    }
  };
};

// -- page header -----------------------------------------------------------

inline void SetPageType(PageBuf& page, PageType type) {
  page[4] = static_cast<uint8_t>(type);
}
inline PageType GetPageType(const PageBuf& page) {
  return static_cast<PageType>(page[4]);
}
inline void SetPageLsn(PageBuf& page, uint64_t lsn) {
  Store64(page.data() + 8, lsn);
}
inline uint64_t GetPageLsn(const PageBuf& page) {
  return Load64(page.data() + 8);
}

/// Recomputes and stores the header checksum (call after every edit,
/// before the page is written or logged).
inline void SealPage(PageBuf& page) {
  Store32(page.data(), Crc32c::Compute(page.data() + 4, kPageSize - 4));
}
/// True when the stored checksum matches the contents.
inline bool VerifyPage(const PageBuf& page) {
  return Load32(page.data()) == Crc32c::Compute(page.data() + 4,
                                                kPageSize - 4);
}

/// Initializes a zeroed page of `type`.
inline void InitPage(PageBuf& page, PageType type) {
  page.fill(0);
  SetPageType(page, type);
}

// -- meta page (page 0) ----------------------------------------------------
//
// Body layout (offsets within the payload, i.e. after the 16-byte
// header):
//   0..7    magic (kDataMagic)
//   8..11   page size (kPageSize; readers reject a mismatch)
//   12..19  page count (pages allocated in the file, including page 0)
//   20..27  B-tree root page (kInvalidPage when the tree is empty)
//   28..35  free-list head (kInvalidPage when empty)
//   36..43  record count (live B-tree entries)
//   44..51  committed LSN (last durable commit)

struct MetaPage {
  uint64_t page_count = 1;
  PageId btree_root = kInvalidPage;
  PageId free_head = kInvalidPage;
  uint64_t record_count = 0;
  uint64_t committed_lsn = 0;

  void EncodeTo(PageBuf& page) const {
    InitPage(page, PageType::kMeta);
    uint8_t* b = page.data() + kPageHeaderSize;
    Store64(b + 0, kDataMagic);
    Store32(b + 8, kPageSize);
    Store64(b + 12, page_count);
    Store64(b + 20, btree_root);
    Store64(b + 28, free_head);
    Store64(b + 36, record_count);
    Store64(b + 44, committed_lsn);
  }

  /// Decodes page 0; false when the magic/geometry do not match (the
  /// caller decides whether WAL replay can repair it).
  bool DecodeFrom(const PageBuf& page) {
    const uint8_t* b = page.data() + kPageHeaderSize;
    if (GetPageType(page) != PageType::kMeta) return false;
    if (Load64(b + 0) != kDataMagic) return false;
    if (Load32(b + 8) != kPageSize) return false;
    page_count = Load64(b + 12);
    btree_root = Load64(b + 20);
    free_head = Load64(b + 28);
    record_count = Load64(b + 36);
    committed_lsn = Load64(b + 44);
    return page_count >= 1;
  }
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_PAGE_H_
