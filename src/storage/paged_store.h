// PagedStore: the durable, crash-safe storage engine behind the CST
// store (docs/STORAGE.md).
//
// One data file of checksummed 4 KiB pages (page.h) plus a write-ahead
// log at `<path>-wal` (wal.h). A B-tree (btree.h) over an LRU buffer
// pool (buffer_pool.h) indexes dump-grammar text fragments by
// structured keys:
//
//   "C\x1f<seq>"              class definition block, registration order
//   "O\x1f<oid>"              object -> class name
//   "A\x1f<oid>\x1f<attr>"    attribute value text (serializer grammar)
//   "I\x1f<seq>"              extra INSTANCEOF line
//
// so ExportToDatabase can reassemble a Serializer dump verbatim and
// reuse Serializer::LoadDatabase — recovery therefore answers the paper
// query suite byte-identically to the last committed state.
//
// Crash protocol (no-steal, redo-only):
//   * Mutations live in buffer-pool frames flagged `unlogged`; such
//     frames are never written to the data file.
//   * Commit seals every unlogged frame, appends the images plus a
//     commit record to the WAL, fsyncs (group commit), and only then
//     clears the flags. A kill -9 at any byte leaves either a replayable
//     committed transaction or an ignorable torn tail.
//   * Checkpoint commits, writes dirty pages to the data file, fsyncs
//     it, and truncates the WAL.
//   * Open replays the WAL (committed transactions only), fsyncs, and
//     truncates it — deterministic redo recovery.
//
// Failure discipline: a failed mutation or commit POISONS the store
// (fail-stop; every later call returns the first error) because
// half-applied unlogged frames cannot be rolled back in place — the
// durable state is untouched, and reopening recovers it. Validation
// errors (bad key, missing record) do not poison.
//
// Locking: one engine mutex (rank kStorageEngine) serializes every
// operation; it ranks before the WAL (kWal) and pool (kBufferPool)
// locks taken underneath, and before kCstStore so import/export may
// intern CSTs (docs/CONCURRENCY.md).

#ifndef LYRIC_STORAGE_PAGED_STORE_H_
#define LYRIC_STORAGE_PAGED_STORE_H_

#include <memory>
#include <string>
#include <string_view>

#include "object/database.h"
#include "storage/btree.h"
#include "storage/wal.h"
#include "util/sync.h"

namespace lyric {
namespace storage {

struct StoreOptions {
  /// Data file path; the WAL lives at WalPathFor(path).
  std::string path;
  /// Buffer-pool capacity in pages (soft cap).
  size_t pool_pages = 256;
  /// When false, Commit skips the WAL fsync — benchmarks only; a crash
  /// may then lose the tail of acknowledged commits (never corrupt).
  bool sync_commits = true;
};

/// What Open's WAL replay found (exported via storage.recovery.*).
struct RecoveryInfo {
  uint64_t committed_txns = 0;
  uint64_t images_applied = 0;
  uint64_t torn_tail_bytes = 0;
};

class PagedStore : private PageAllocator {
 public:
  /// Opens (creating if absent) the store at opts.path, running redo
  /// recovery first. kDataLoss when the file is not a lyric store or is
  /// corrupt beyond the recoverable torn tail.
  static Result<std::unique_ptr<PagedStore>> Open(const StoreOptions& opts);

  ~PagedStore() override;

  // -- key/value records (buffered until Commit) ---------------------------
  Status Put(std::string_view key, std::string_view value)
      LYRIC_EXCLUDES(mu_);
  /// kNotFound when absent.
  Result<std::string> Get(std::string_view key) LYRIC_EXCLUDES(mu_);
  /// OK whether or not the key existed.
  Status Delete(std::string_view key) LYRIC_EXCLUDES(mu_);
  /// In-order scan from the first key >= `lower`; callback returns false
  /// to stop.
  Status Scan(std::string_view lower,
              const std::function<Result<bool>(std::string_view,
                                               std::string_view)>& fn)
      LYRIC_EXCLUDES(mu_);

  /// Makes every buffered mutation durable (WAL append + fsync). No-op
  /// when nothing changed.
  Status Commit() LYRIC_EXCLUDES(mu_);
  /// Commit + flush dirty pages to the data file + fsync + truncate the
  /// WAL.
  Status Checkpoint() LYRIC_EXCLUDES(mu_);
  /// Checkpoints (best-effort when poisoned) and closes both files.
  Status Close() LYRIC_EXCLUDES(mu_);

  // -- Serializer bridge ---------------------------------------------------
  /// Writes `db` (schema, objects, CST attribute values, instance-of
  /// facts) into an EMPTY store and commits.
  Status ImportDatabase(const Database& db) LYRIC_EXCLUDES(mu_);
  /// Reassembles the stored records into a Serializer dump and loads it
  /// into the (empty) `db`.
  Status ExportToDatabase(Database* db) LYRIC_EXCLUDES(mu_);
  /// Diffs `db` against the stored records and commits the difference
  /// in one transaction — the write-through path for a live server:
  /// after a schema mutation evaluates, SyncDatabase makes the new
  /// state durable before the client is acknowledged. No-op commit when
  /// nothing changed. A failed sync poisons the store fail-stop like
  /// any other failed commit; the durable state stays the previous
  /// committed prefix.
  Status SyncDatabase(const Database& db) LYRIC_EXCLUDES(mu_);

  uint64_t RecordCount() LYRIC_EXCLUDES(mu_);
  /// True when uncommitted mutations are buffered.
  bool HasUncommitted() LYRIC_EXCLUDES(mu_);
  /// The first poisoning error — OK while the store is healthy. Lets a
  /// server distinguish "degrade to read-only" from "keep serving".
  Status poison_status() LYRIC_EXCLUDES(mu_);
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& path() const { return opts_.path; }

  static std::string WalPathFor(const std::string& data_path) {
    return data_path + "-wal";
  }

 private:
  explicit PagedStore(StoreOptions opts) : opts_(std::move(opts)) {}

  // PageAllocator (called by the B-tree under the engine lock).
  Result<PageRef> Allocate(PageType type) override;
  Status Free(PageId id) override;

  Status PutLocked(std::string_view key, std::string_view value)
      LYRIC_REQUIRES(mu_);
  Status DeleteLocked(std::string_view key) LYRIC_REQUIRES(mu_);
  Status CommitLocked() LYRIC_REQUIRES(mu_);
  Status CheckpointLocked() LYRIC_REQUIRES(mu_);
  /// Poisons the store on non-validation errors and returns `st`.
  Status MaybePoison(Status st) LYRIC_REQUIRES(mu_);

  const StoreOptions opts_;
  RecoveryInfo recovery_;
  sync::Mutex mu_{sync::LockRank::kStorageEngine, "paged_store"};
  std::unique_ptr<Pager> pager_ LYRIC_GUARDED_BY(mu_);
  std::unique_ptr<BufferPool> pool_ LYRIC_GUARDED_BY(mu_);
  std::unique_ptr<Wal> wal_ LYRIC_GUARDED_BY(mu_);
  std::unique_ptr<BTree> tree_ LYRIC_GUARDED_BY(mu_);
  MetaPage meta_ LYRIC_GUARDED_BY(mu_);
  Status poisoned_ LYRIC_GUARDED_BY(mu_);
  bool closed_ LYRIC_GUARDED_BY(mu_) = false;
};

}  // namespace storage
}  // namespace lyric

#endif  // LYRIC_STORAGE_PAGED_STORE_H_
