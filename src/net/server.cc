#include "net/server.h"

#include <cctype>
#include <chrono>
#include <exception>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "storage/paged_store.h"

namespace lyric {
namespace net {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Gauge& ActiveGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("net.connections.active");
  return gauge;
}

/// Numeric HealthState mirror for dashboards (3 = serving, 4 =
/// draining, 5 = read_only — the enum values).
obs::Gauge& HealthGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("net.health.state");
  return gauge;
}

obs::Gauge& InFlightGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Global().GetGauge("net.queries.in_flight");
  return gauge;
}

}  // namespace

bool IsSchemaMutation(const std::string& query) {
  size_t i = 0;
  const size_t n = query.size();
  for (;;) {
    while (i < n && std::isspace(static_cast<unsigned char>(query[i]))) ++i;
    if (i + 1 < n && query[i] == '-' && query[i + 1] == '-') {
      while (i < n && query[i] != '\n') ++i;
      continue;
    }
    break;
  }
  // A textual pre-check, not a parse: only CREATE can mutate the schema,
  // and a false positive merely serializes one read query.
  constexpr char kCreate[] = "CREATE";
  for (size_t k = 0; k < 6; ++k) {
    if (i + k >= n ||
        std::toupper(static_cast<unsigned char>(query[i + k])) != kCreate[k]) {
      return false;
    }
  }
  // Require a word boundary so e.g. "CREATED" (not a keyword today, but
  // cheap to be exact) does not take the exclusive gate.
  return i + 6 >= n || !std::isalnum(static_cast<unsigned char>(query[i + 6]));
}

Server::Server(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server: already started");
  }
  Status st = listener_.Bind(options_.host, options_.port);
  if (!st.ok()) return st;
  port_ = listener_.port();
  const size_t workers = options_.exec_threads != 0
                             ? options_.exec_threads
                             : exec::ThreadPool::HardwareThreads();
  pool_ = std::make_unique<exec::ThreadPool>(workers);
  // A store that arrived already poisoned (e.g. its last pre-handoff
  // commit failed) starts the server in read-only rather than letting
  // the first CREATE discover it.
  if (options_.store != nullptr) {
    Status poison = options_.store->poison_status();
    if (!poison.ok()) EnterReadOnly(poison);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  base_health_.store(static_cast<uint8_t>(HealthState::kServing),
                     std::memory_order_release);
  HealthGauge().Set(static_cast<int64_t>(health()));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

HealthState Server::health() const {
  // Display precedence: a drain is the most urgent fact, degraded mode
  // next, then the boot/serve baseline.
  if (draining_.load(std::memory_order_acquire)) {
    return HealthState::kDraining;
  }
  if (read_only_.load(std::memory_order_acquire)) {
    return HealthState::kReadOnly;
  }
  return static_cast<HealthState>(
      base_health_.load(std::memory_order_acquire));
}

void Server::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  LYRIC_OBS_COUNT("net.drain.begun");
  HealthGauge().Set(static_cast<int64_t>(HealthState::kDraining));
  // Stop accepting: wake the accept thread, join it, then close the
  // listener so new connects are refused at the TCP level while the
  // drain runs. Existing sessions stay up to receive their answers
  // (and typed sheds for anything they send from now on).
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
}

bool Server::WaitForDrainIdle(uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  sync::MutexLock lock(lifecycle_mu_);
  while (in_flight_ > 0) {
    if (drain_idle_cv_.WaitUntil(lifecycle_mu_, deadline)) {
      return in_flight_ == 0;
    }
  }
  return true;
}

void Server::EnterReadOnly(const Status& cause) {
  {
    sync::MutexLock lock(lifecycle_mu_);
    if (degraded_cause_.ok()) degraded_cause_ = cause;
  }
  bool expected = false;
  if (read_only_.compare_exchange_strong(expected, true)) {
    LYRIC_OBS_COUNT("net.readonly.entered");
  }
  HealthGauge().Set(static_cast<int64_t>(health()));
}

uint64_t Server::in_flight_queries() const {
  sync::MutexLock lock(lifecycle_mu_);
  return in_flight_;
}

std::string Server::DegradedCauseMessage() const {
  sync::MutexLock lock(lifecycle_mu_);
  return degraded_cause_.ok() ? std::string() : degraded_cause_.message();
}

HealthInfo Server::BuildHealthInfo() {
  HealthInfo info;
  info.state = health();
  info.store_backed = options_.store != nullptr;
  info.read_only = read_only_.load(std::memory_order_acquire);
  info.draining = draining_.load(std::memory_order_acquire);
  if (options_.store != nullptr) {
    const storage::RecoveryInfo& rec = options_.store->recovery();
    info.recovered_txns = rec.committed_txns;
    info.recovered_images = rec.images_applied;
    info.torn_tail_bytes = rec.torn_tail_bytes;
  }
  info.active_sessions = active_sessions();
  info.in_flight_queries = in_flight_queries();
  info.sessions_opened = sessions_opened();
  info.detail = DegradedCauseMessage();
  return info;
}

Status Server::SyncStore() {
  Status st = options_.store->SyncDatabase(*db_);
  if (!st.ok()) {
    // The commit never became durable, so the client will NOT be
    // acknowledged (the caller turns this status into the response) —
    // no torn acknowledgement. The in-memory view stays visible until
    // restart; read-only mode quarantines the divergence by refusing
    // every further mutation (docs/ROBUSTNESS.md).
    LYRIC_OBS_COUNT("net.store.sync_failures");
    EnterReadOnly(st);
  }
  return st;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept thread first so no session can be registered after
  // the sweep below.
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Wake every reader blocked in recv(), then join outside the lock —
  // a reader marking itself done never needs mu_, but joining under it
  // would still serialize teardown needlessly.
  std::vector<std::unique_ptr<Session>> victims;
  {
    sync::MutexLock lock(mu_);
    for (auto& [id, session] : sessions_) {
      session->socket.ShutdownBoth();
      victims.push_back(std::move(session));
    }
    sessions_.clear();
  }
  for (auto& session : victims) {
    if (session->reader.joinable()) session->reader.join();
    ActiveGauge().Add(-1);
  }
  // Readers are gone, so no task can still be queued; destroying the
  // pool drains stragglers and joins the workers.
  pool_.reset();
  listener_.Close();
}

size_t Server::active_sessions() const {
  sync::MutexLock lock(mu_);
  size_t live = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session->done.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept();
    ReapFinished();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        break;
      }
      // Transient accept failure (resource pressure, injected `net`
      // fault killing a handshake): the server must keep serving.
      LYRIC_OBS_COUNT("net.accept_errors");
      continue;
    }
    LYRIC_OBS_COUNT("net.connections.accepted");
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    ActiveGauge().Add(1);
    auto session = std::make_unique<Session>();
    session->socket = std::move(*accepted);
    Session* raw = session.get();
    sync::MutexLock lock(mu_);
    session->id = next_session_id_++;
    raw->reader = std::thread([this, raw] { ServeConnection(raw); });
    sessions_.emplace(raw->id, std::move(session));
  }
}

void Server::ReapFinished() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    sync::MutexLock lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->second));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : finished) {
    if (session->reader.joinable()) session->reader.join();
    ActiveGauge().Add(-1);
  }
}

void Server::ServeConnection(Session* session) {
  while (!stopping_.load(std::memory_order_acquire)) {
    Status st = ServeOneFrame(session);
    if (!st.ok()) break;
  }
  session->socket.Close();
  session->done.store(true, std::memory_order_release);
}

Status Server::ServeOneFrame(Session* session) {
  char header_bytes[kFrameHeaderBytes];
  bool clean_eof = false;
  Status st =
      session->socket.ReadFull(header_bytes, kFrameHeaderBytes, &clean_eof);
  if (!st.ok()) {
    // A peer closing between frames is the normal end of a session; a
    // close mid-header is not, but there is nobody left to tell.
    if (!clean_eof) LYRIC_OBS_COUNT("net.disconnects");
    return st;
  }
  FrameHeader header;
  st = DecodeFrameHeader(header_bytes, kFrameHeaderBytes,
                         options_.max_payload_bytes, &header);
  if (!st.ok()) {
    LYRIC_OBS_COUNT("net.protocol_errors");
    SendProtocolError(session->socket, st);
    return st;
  }
  std::string payload(header.payload_len, '\0');
  if (header.payload_len != 0) {
    st = session->socket.ReadFull(payload.data(), payload.size());
    if (!st.ok()) {
      LYRIC_OBS_COUNT("net.disconnects");
      return st;
    }
  }
  LYRIC_OBS_COUNT("net.frames.received");

  const uint64_t start_ns = NowNanos();
  switch (header.type) {
    case FrameType::kPing: {
      if (!payload.empty()) {
        Status violation =
            Status::InvalidArgument("frame: PING carries a payload");
        LYRIC_OBS_COUNT("net.protocol_errors");
        SendProtocolError(session->socket, violation);
        return violation;
      }
      st = SendFrame(session->socket, FrameType::kPong, std::string());
      break;
    }
    case FrameType::kQuery: {
      QueryRequest request;
      st = DecodeQueryRequest(payload, &request);
      if (!st.ok()) {
        LYRIC_OBS_COUNT("net.protocol_errors");
        SendProtocolError(session->socket, st);
        return st;
      }
      // The accepted/shed decision and the in-flight increment are one
      // atomic step: a query the drain barrier doesn't see coming was
      // never accepted, and an accepted one is counted before it runs.
      bool accepted_for_eval = false;
      {
        sync::MutexLock lock(lifecycle_mu_);
        if (!draining_.load(std::memory_order_acquire)) {
          ++in_flight_;
          accepted_for_eval = true;
        }
      }
      if (!accepted_for_eval) {
        LYRIC_OBS_COUNT("net.drain.sheds");
        QueryResponse shed;
        shed.status =
            Status::Unavailable("server draining: not accepting new queries")
                .WithRetryAfter(options_.drain_retry_after_ms);
        st = SendFrame(session->socket, FrameType::kResult,
                       EncodeQueryResponse(shed));
        break;
      }
      InFlightGauge().Add(1);
      // Dispatch the evaluation onto the pool and wait: requests on one
      // connection stay ordered, concurrency comes from other sessions.
      QueryResponse response;
      exec::ChunkLatch latch(1);
      pool_->Submit([this, &request, &response, &latch] {
        response = HandleQuery(request);
        latch.Done(0);
      });
      latch.WaitFor(0);
      st = SendFrame(session->socket, FrameType::kResult,
                     EncodeQueryResponse(response));
      // Only after the answer is on the wire (or the transport died) is
      // the query no longer in flight — the drain contract is "accepted
      // queries get their responses delivered", not just "evaluated".
      {
        sync::MutexLock lock(lifecycle_mu_);
        --in_flight_;
        if (in_flight_ == 0) drain_idle_cv_.NotifyAll();
      }
      InFlightGauge().Add(-1);
      break;
    }
    case FrameType::kHealth: {
      if (!payload.empty()) {
        Status violation =
            Status::InvalidArgument("frame: HEALTH carries a payload");
        LYRIC_OBS_COUNT("net.protocol_errors");
        SendProtocolError(session->socket, violation);
        return violation;
      }
      LYRIC_OBS_COUNT("net.health.probes");
      st = SendFrame(session->socket, FrameType::kHealthInfo,
                     EncodeHealthInfo(BuildHealthInfo()));
      break;
    }
    default: {
      // kResult/kPong/kError/kHealthInfo only ever travel server -> client.
      Status violation = Status::InvalidArgument(
          "frame: unexpected client frame type " +
          std::to_string(static_cast<int>(header.type)));
      LYRIC_OBS_COUNT("net.protocol_errors");
      SendProtocolError(session->socket, violation);
      return violation;
    }
  }
  if (st.ok()) LYRIC_OBS_RECORD("net.frame.latency", NowNanos() - start_ns);
  return st;
}

QueryResponse Server::HandleQuery(const QueryRequest& request) {
  EvalOptions opts = options_.eval;
  if (request.deadline_ms.has_value()) opts.deadline_ms = request.deadline_ms;
  if (request.memory_budget.has_value()) {
    opts.memory_budget = request.memory_budget;
  }
  if (request.threads != 0) opts.threads = request.threads;
  if (request.max_rows != 0) opts.max_rows = request.max_rows;
  if (request.analyze_first) opts.analyze_first = true;
  if (options_.scheduler != nullptr) opts.scheduler = options_.scheduler;
  // The client owns retry: a shed must reach the wire as a typed
  // kUnavailable with its retry-after hint, not be absorbed by a
  // server-side loop that inherited LYRIC_RETRY from the environment.
  if (!opts.retry.has_value()) opts.retry = exec::RetryPolicy{};

  // Exception firewall: a pool worker must never unwind into
  // std::terminate, whatever the evaluator throws.
  try {
    if (IsSchemaMutation(request.query)) {
      if (read_only_.load(std::memory_order_acquire)) {
        LYRIC_OBS_COUNT("net.readonly.sheds");
        QueryResponse shed;
        shed.status = Status::Unavailable(
                          "server read-only (store degraded: " +
                          DegradedCauseMessage() + "); write shed")
                          .WithRetryAfter(options_.read_only_retry_after_ms);
        return shed;
      }
      sync::WriterMutexLock gate(schema_gate_);
      Evaluator evaluator(db_, opts);
      Result<ResultSet> result = evaluator.Execute(request.query);
      if (result.ok() && options_.store != nullptr) {
        // Write-through while still holding the exclusive gate: the
        // mutation is durable (or the server is degraded) before any
        // response leaves and before any other mutation can interleave.
        Status synced = SyncStore();
        if (!synced.ok()) {
          QueryResponse failed;
          failed.status = Status(
              synced.code(),
              "store write-through failed: " + synced.message());
          return failed;
        }
      }
      return ResponseFromResult(result);
    }
    sync::ReaderMutexLock gate(schema_gate_);
    Evaluator evaluator(db_, opts);
    return ResponseFromResult(evaluator.Execute(request.query));
  } catch (const std::exception& e) {
    QueryResponse response;
    response.status =
        Status::Internal(std::string("server: evaluation threw: ") + e.what());
    return response;
  } catch (...) {
    QueryResponse response;
    response.status = Status::Internal("server: evaluation threw");
    return response;
  }
}

Status Server::SendFrame(Socket& socket, FrameType type,
                         const std::string& payload) {
  char header_bytes[kFrameHeaderBytes];
  // Every outgoing frame carries the current lifecycle state in header
  // byte 6 — clients learn of a drain or degrade without a probe.
  EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()), header_bytes,
                    health());
  std::string frame(header_bytes, kFrameHeaderBytes);
  frame.append(payload);
  // One write per frame: header+payload must never interleave with
  // another thread's bytes (they cannot today — one reader per session —
  // but a single syscall also halves the loopback wakeups).
  Status st = socket.WriteFull(frame.data(), frame.size());
  if (st.ok()) LYRIC_OBS_COUNT("net.frames.sent");
  return st;
}

void Server::SendProtocolError(Socket& socket, const Status& violation) {
  WireError error;
  error.code = violation.code();
  error.message = violation.message();
  // Best-effort: the peer may already be gone, and the connection is
  // being torn down either way.
  (void)SendFrame(socket, FrameType::kError, EncodeWireError(error));
}

}  // namespace net
}  // namespace lyric
