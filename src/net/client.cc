#include "net/client.h"

#include <chrono>
#include <thread>
#include <utility>

namespace lyric {
namespace net {

Status Client::Connect() {
  if (socket_.valid()) return Status::OK();
  Result<Socket> connected = Socket::Connect(options_.host, options_.port);
  if (!connected.ok()) return connected.status();
  const bool is_reconnect = stats_.sends > 0;
  socket_ = std::move(*connected);
  if (is_reconnect) ++stats_.reconnects;
  return Status::OK();
}

void Client::Close() { socket_.Close(); }

Result<QueryResponse> Client::Execute(const std::string& query) {
  QueryRequest request;
  request.query = query;
  request.deadline_ms = options_.deadline_ms;
  request.memory_budget = options_.memory_budget;
  request.threads = options_.threads;
  request.max_rows = options_.max_rows;
  request.analyze_first = options_.analyze_first;
  return Execute(request);
}

Result<QueryResponse> Client::Execute(const QueryRequest& request) {
  ++stats_.requests;
  const std::string payload = EncodeQueryRequest(request);
  for (uint32_t attempt = 0;; ++attempt) {
    Result<QueryResponse> outcome = ExecuteOnce(payload);
    Status failure = Status::OK();
    if (outcome.ok()) {
      if (!outcome->status.IsUnavailable()) return outcome;
      // A typed shed: well-formed response, transient status, possibly
      // carrying the scheduler's retry-after hint.
      ++stats_.shed_responses;
      failure = outcome->status;
      if (!options_.retry.ShouldRetry(failure, attempt)) {
        return outcome;  // Hand the shed to the caller as data.
      }
    } else {
      // Transport/protocol failure: this connection is unusable. Drop
      // it; the retry (if any) reconnects from scratch.
      ++stats_.transport_errors;
      Close();
      failure = outcome.status();
      if (!options_.retry.ShouldRetry(failure, attempt)) {
        return failure;
      }
    }
    const uint64_t backoff_ms = options_.retry.BackoffMs(attempt, failure);
    stats_.backoff_ms_total += backoff_ms;
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

Result<QueryResponse> Client::ExecuteOnce(const std::string& payload) {
  Status st = Connect();
  if (!st.ok()) return st;
  ++stats_.sends;
  st = SendFrame(FrameType::kQuery, payload);
  if (!st.ok()) return st;
  std::string response_payload;
  Result<FrameHeader> header = ReadFrame(&response_payload);
  if (!header.ok()) {
    // The query left this process whole; the answer never came back.
    // The server may or may not have accepted/executed it — exactly
    // the uncertainty the chaos harness quantifies.
    ++stats_.in_flight_at_disconnect;
    return header.status();
  }
  switch (header->type) {
    case FrameType::kResult: {
      QueryResponse response;
      st = DecodeQueryResponse(response_payload, &response);
      if (!st.ok()) return st;
      return response;
    }
    case FrameType::kError: {
      // The server names the protocol violation and closes; surface its
      // typed status as this attempt's failure.
      WireError error;
      st = DecodeWireError(response_payload, &error);
      if (!st.ok()) return st;
      return Status(error.code, "server: " + error.message);
    }
    default:
      return Status::InvalidArgument(
          "client: unexpected server frame type " +
          std::to_string(static_cast<int>(header->type)));
  }
}

Status Client::Health(HealthInfo* out) {
  Status st = Connect();
  if (!st.ok()) return st;
  st = SendFrame(FrameType::kHealth, std::string());
  if (!st.ok()) {
    Close();
    return st;
  }
  std::string payload;
  Result<FrameHeader> header = ReadFrame(&payload);
  if (!header.ok()) {
    Close();
    return header.status();
  }
  if (header->type != FrameType::kHealthInfo) {
    Close();
    return Status::InvalidArgument(
        "client: expected HEALTHINFO, got frame type " +
        std::to_string(static_cast<int>(header->type)));
  }
  st = DecodeHealthInfo(payload, out);
  if (!st.ok()) Close();
  return st;
}

Status Client::Ping() {
  Status st = Connect();
  if (!st.ok()) return st;
  st = SendFrame(FrameType::kPing, std::string());
  if (!st.ok()) {
    Close();
    return st;
  }
  std::string payload;
  Result<FrameHeader> header = ReadFrame(&payload);
  if (!header.ok()) {
    Close();
    return header.status();
  }
  if (header->type != FrameType::kPong || !payload.empty()) {
    Close();
    return Status::InvalidArgument("client: bad PONG");
  }
  return Status::OK();
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  char header_bytes[kFrameHeaderBytes];
  EncodeFrameHeader(type, static_cast<uint32_t>(payload.size()), header_bytes);
  std::string frame(header_bytes, kFrameHeaderBytes);
  frame.append(payload);
  return socket_.WriteFull(frame.data(), frame.size());
}

Result<FrameHeader> Client::ReadFrame(std::string* payload) {
  char header_bytes[kFrameHeaderBytes];
  Status st = socket_.ReadFull(header_bytes, kFrameHeaderBytes);
  if (!st.ok()) return st;
  FrameHeader header;
  st = DecodeFrameHeader(header_bytes, kFrameHeaderBytes,
                         options_.max_payload_bytes, &header);
  if (!st.ok()) return st;
  last_server_health_ = header.health;
  payload->assign(header.payload_len, '\0');
  if (header.payload_len != 0) {
    st = socket_.ReadFull(payload->data(), payload->size());
    if (!st.ok()) return st;
  }
  return header;
}

}  // namespace net
}  // namespace lyric
