// Thin RAII wrappers over POSIX TCP sockets.
//
// Everything the server and client do on the wire funnels through
// ReadFull/WriteFull/Accept here, which is also where the `net` fault
// site lives: with LYRIC_FAULT=net:prob[:seed] armed, any of those calls
// can fail with a typed kUnavailable exactly as a flaky network would
// make it. No exceptions, no partial reads escape: ReadFull either fills
// the buffer or returns the error (with clean end-of-stream
// distinguished for frame-boundary closes).
//
// Deliberately synchronous: connections get cheap blocked reader threads
// and evaluation is dispatched onto the exec::ThreadPool (see server.h),
// so there is no event loop to integrate with.

#ifndef LYRIC_NET_SOCKET_H_
#define LYRIC_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace lyric {
namespace net {

/// A connected TCP socket. Move-only; the destructor closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  /// Connects to host:port (numeric or resolvable host). kUnavailable on
  /// failure — connecting is always retryable.
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `len` bytes. On end-of-stream before the first byte,
  /// sets *clean_eof (when provided) and returns kUnavailable — a peer
  /// closing between frames is normal, mid-frame it is not. Transport
  /// errors and injected `net` faults return kUnavailable.
  Status ReadFull(void* buf, size_t len, bool* clean_eof = nullptr);

  /// Writes exactly `len` bytes (send with SIGPIPE suppressed).
  Status WriteFull(const void* buf, size_t len);

  /// Wakes any thread blocked in ReadFull/WriteFull on this socket; they
  /// return kUnavailable. Safe from another thread (unlike Close, which
  /// frees the fd). The shutdown-then-join-then-close dance is how the
  /// server stops its reader threads.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket.
class Listener {
 public:
  Listener() = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { Close(); }

  /// Binds and listens on host:port; port 0 picks an ephemeral port,
  /// readable from port() afterwards.
  Status Bind(const std::string& host, uint16_t port);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Blocks for one connection. kUnavailable after Shutdown (the accept
  /// loop's exit signal), on transient accept failures, and on injected
  /// `net` faults.
  Result<Socket> Accept();

  /// Wakes a thread blocked in Accept; it returns kUnavailable.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace lyric

#endif  // LYRIC_NET_SOCKET_H_
