#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string("net: ") + what + " failed: " +
                             std::strerror(errno));
}

bool InjectNetFault() {
  if (fault::Enabled() && fault::Inject(fault::kSiteNet)) {
    LYRIC_OBS_COUNT("net.faults.injected");
    return true;
  }
  return false;
}

Status InjectedFault(const char* what) {
  return Status::Unavailable(std::string("net: injected ") + what +
                             " fault");
}

/// Query latency over loopback is dominated by Nagle-delayed ACK
/// interaction without this; every test and the load generator run over
/// loopback, so just always disable coalescing.
void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  if (InjectNetFault()) return InjectedFault("connect");
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("net: resolve '" + host +
                               "' failed: " + ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("net: no addresses for '" + host + "'");
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    ::freeaddrinfo(res);
    return Socket(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Status Socket::ReadFull(void* buf, size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (!valid()) return Status::Unavailable("net: read on closed socket");
  if (InjectNetFault()) return InjectedFault("read");
  char* out = static_cast<char*>(buf);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, out + got, len - got, 0);
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::Unavailable(
          got == 0 ? "net: connection closed"
                   : "net: connection closed mid-frame (" +
                         std::to_string(got) + " of " + std::to_string(len) +
                         " bytes)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::WriteFull(const void* buf, size_t len) {
  if (!valid()) return Status::Unavailable("net: write on closed socket");
  if (InjectNetFault()) return InjectedFault("write");
  const char* data = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as a
    // Status, never as a process-killing SIGPIPE.
    ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

void Socket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Bind(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("net: bind host '" + host +
                                   "' is not an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<Socket> Listener::Accept() {
  if (!valid()) return Status::Unavailable("net: accept on closed listener");
  int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  // Injecting after the accept models a handshake that dies immediately:
  // the connection existed, the server must still clean it up.
  if (InjectNetFault()) {
    ::close(fd);
    return InjectedFault("accept");
  }
  SetNoDelay(fd);
  return Socket(fd);
}

void Listener::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

}  // namespace net
}  // namespace lyric
