// Blocking client for lyric_serverd.
//
// One Client owns one connection and is NOT thread-safe — lyric_loadgen
// and the tests give each simulated client its own instance, which also
// keeps the retry bookkeeping honest (stats are per-client, no locks).
//
// Execute() runs the client half of the resilience story end to end:
//
//   * transport failures (refused connect, mid-frame disconnect,
//     injected LYRIC_FAULT=net faults) tear the connection down and —
//     under the configured exec::RetryPolicy — reconnect and resend;
//   * a well-formed response carrying a typed kUnavailable shed is
//     backed off and retried under the same policy, honoring the
//     server's EWMA retry-after hint as the backoff floor (the policy's
//     existing contract);
//   * when retries are exhausted the last shed response is returned
//     as-is (an OK Result whose .status is kUnavailable), so callers
//     can count sheds without treating them as client bugs.
//
// The deterministic RetryPolicy from PR 5 is reused unchanged: backoff
// is a pure function of (seed, attempt, hint), so a replayed load run
// makes the same retry decisions.

#ifndef LYRIC_NET_CLIENT_H_
#define LYRIC_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "exec/scheduler.h"
#include "net/frame.h"
#include "net/socket.h"
#include "util/result.h"
#include "util/status.h"

namespace lyric {
namespace net {

/// Client knobs.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Retry policy for transient failures: transport errors and shed
  /// (kUnavailable) responses. Default: no retries.
  exec::RetryPolicy retry;
  /// Per-request defaults, applied to every Execute(query) call; a
  /// request built by hand overrides them field by field.
  std::optional<uint64_t> deadline_ms;
  std::optional<uint64_t> memory_budget;
  uint32_t threads = 0;
  uint64_t max_rows = 0;
  bool analyze_first = false;
  /// Receive-side frame payload cap.
  uint32_t max_payload_bytes = kMaxPayloadBytes;
};

/// What one client observed — the loadgen aggregates these.
struct ClientStats {
  uint64_t requests = 0;        ///< Execute() calls.
  uint64_t sends = 0;           ///< Wire attempts (requests + retries).
  uint64_t shed_responses = 0;  ///< Typed kUnavailable responses seen.
  uint64_t transport_errors = 0;
  uint64_t reconnects = 0;  ///< Successful connects after the first.
  uint64_t backoff_ms_total = 0;
  /// Queries fully sent whose response never arrived (the connection
  /// died in between): each is a request the server MAY have accepted
  /// and executed without this client learning the outcome. The chaos
  /// harness asserts drains keep this at zero; crash tests use it to
  /// bound the may-or-may-not-be-durable window.
  uint64_t in_flight_at_disconnect = 0;
};

/// A blocking lyric_serverd connection. Not thread-safe.
class Client {
 public:
  explicit Client(ClientOptions options) : options_(std::move(options)) {}
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Ensures the connection is up (no-op when it already is).
  Status Connect();
  void Close();
  bool connected() const { return socket_.valid(); }

  /// Executes `query` with the per-request defaults from ClientOptions.
  Result<QueryResponse> Execute(const std::string& query);
  /// Executes a fully specified request. The Result is an error only for
  /// non-retryable transport/protocol failures; evaluation failures
  /// (including sheds that survived every retry) come back as an OK
  /// Result whose response carries the non-OK status.
  Result<QueryResponse> Execute(const QueryRequest& request);

  /// Round-trips a PING frame.
  Status Ping();

  /// Round-trips a HEALTH probe; fills `out` with the server's
  /// lifecycle state and recovery/load stats. Retries are the caller's
  /// business (loadgen polls this for readiness).
  Status Health(HealthInfo* out);

  const ClientStats& stats() const { return stats_; }

  /// The HealthState stamped on the last server frame this client read
  /// (kUnknown before any response, and from pre-health servers).
  HealthState last_server_health() const { return last_server_health_; }

 private:
  /// One wire attempt: connect if needed, send, await the response.
  Result<QueryResponse> ExecuteOnce(const std::string& payload);
  Status SendFrame(FrameType type, const std::string& payload);
  /// Reads one frame, enforcing the payload cap.
  Result<FrameHeader> ReadFrame(std::string* payload);

  ClientOptions options_;
  Socket socket_;
  ClientStats stats_;
  HealthState last_server_health_ = HealthState::kUnknown;
};

}  // namespace net
}  // namespace lyric

#endif  // LYRIC_NET_CLIENT_H_
