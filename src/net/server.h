// lyric_serverd: a long-lived multi-client TCP query server.
//
// Architecture (docs/SERVER.md):
//
//   * one accept thread owns the Listener; each accepted connection gets
//     a Session (id, socket, reader thread) in a registry guarded by a
//     kNetSession-ranked mutex. Reader threads are cheap — they spend
//     their lives blocked in recv().
//   * a reader thread parses one frame at a time and dispatches query
//     evaluation onto the server's exec::ThreadPool, then waits for the
//     result before reading the next frame — requests on one connection
//     are strictly ordered, concurrency comes from having many
//     connections share the pool.
//   * per-request deadline/budget/thread options overlay the server's
//     base EvalOptions, so the PR-5 admission machinery (queueing,
//     degrade-to-serial, typed kUnavailable sheds with retry-after
//     hints) and the PR-4 governor (PARTIAL results) are end-to-end
//     visible on the wire.
//   * CREATE VIEW queries mutate the schema, which concurrent readers
//     scan unlocked; a server-wide SharedMutex (rank kNetSchemaGate)
//     serializes them: shared for reads, exclusive for view creation.
//   * protocol violations get a best-effort kError frame and the
//     connection is closed; transport failures (including injected
//     LYRIC_FAULT=net faults) drop the connection. Either way the
//     session is reaped — Stop() and the fault tests assert nothing
//     leaks.
//
// Observability: connection counts ride the net.connections.* counters
// and the net.connections.active gauge, per-frame service time lands in
// the net.frame.latency histogram, and protocol violations count into
// net.protocol_errors — all in the PR-6 registry, so `.metrics` /
// lyric_stats / the Prometheus flusher see the server for free.

#ifndef LYRIC_NET_SERVER_H_
#define LYRIC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "object/database.h"
#include "query/evaluator.h"
#include "util/sync.h"

namespace lyric {
namespace net {

/// Server knobs.
struct ServerOptions {
  /// Bind address; loopback by default (a reproduction, not a product —
  /// there is no authentication on this protocol).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read Server::port() after Start.
  uint16_t port = 0;
  /// Workers in the evaluation pool requests are dispatched onto.
  /// 0 = exec::ThreadPool::HardwareThreads().
  size_t exec_threads = 0;
  /// Receive-side frame payload cap.
  uint32_t max_payload_bytes = kMaxPayloadBytes;
  /// Base evaluation options; per-request fields overlay these. The
  /// server never retries internally (retry is forced off unless set
  /// here explicitly): sheds travel to the client, whose RetryPolicy
  /// owns backoff.
  EvalOptions eval;
  /// Admission goes through this scheduler when set (tests); the
  /// process-wide QueryScheduler::Global() otherwise.
  exec::QueryScheduler* scheduler = nullptr;
};

/// The server. Start() returns once the listener is live; Stop() (or the
/// destructor) tears down every session and joins every thread.
class Server {
 public:
  explicit Server(Database* db, ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the pool and the accept thread. InvalidArgument if
  /// already started; bind failures pass through.
  Status Start();

  /// Idempotent full teardown: stops accepting, shuts down every
  /// session's socket, joins reader threads, drains the pool.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  /// Live (not yet reaped) sessions. 0 after Stop, and — the fault-gate
  /// contract — 0 once every client has disconnected, faults included.
  size_t active_sessions() const LYRIC_EXCLUDES(mu_);
  /// Lifetime accepted-connection count.
  uint64_t sessions_opened() const {
    return sessions_opened_.load(std::memory_order_relaxed);
  }

 private:
  /// One connection: identity, transport, and its reader thread.
  struct Session {
    uint64_t id = 0;
    Socket socket;
    std::thread reader;
    /// Set by the reader as its last act; the accept loop and Stop reap
    /// (join + erase) sessions whose flag is up.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Session* session);
  /// Reads and serves one frame. Non-OK means the connection is finished
  /// (clean close, transport failure, or protocol violation).
  Status ServeOneFrame(Session* session);
  /// Evaluates one request under the schema gate; never throws.
  QueryResponse HandleQuery(const QueryRequest& req);
  Status SendFrame(Socket& socket, FrameType type,
                   const std::string& payload);
  /// Best-effort kError frame; the caller closes the connection.
  void SendProtocolError(Socket& socket, const Status& violation);

  /// Joins and erases sessions whose reader has finished.
  void ReapFinished() LYRIC_EXCLUDES(mu_);

  Database* db_;
  ServerOptions options_;
  Listener listener_;
  uint16_t port_ = 0;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sessions_opened_{0};

  mutable sync::Mutex mu_{sync::LockRank::kNetSession, "net_session"};
  std::map<uint64_t, std::unique_ptr<Session>> sessions_
      LYRIC_GUARDED_BY(mu_);
  uint64_t next_session_id_ LYRIC_GUARDED_BY(mu_) = 1;

  /// Readers share, CREATE VIEW excludes. Acquired on pool workers for
  /// the duration of one evaluation; ranked before every lock evaluation
  /// takes (docs/CONCURRENCY.md).
  sync::SharedMutex schema_gate_{sync::LockRank::kNetSchemaGate,
                                 "net_schema_gate"};
};

/// True when `query` starts (after whitespace and `--` comments) with a
/// schema-mutating keyword (CREATE); such queries take the schema gate
/// exclusively. Exposed for tests.
bool IsSchemaMutation(const std::string& query);

}  // namespace net
}  // namespace lyric

#endif  // LYRIC_NET_SERVER_H_
