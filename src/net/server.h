// lyric_serverd: a long-lived multi-client TCP query server.
//
// Architecture (docs/SERVER.md):
//
//   * one accept thread owns the Listener; each accepted connection gets
//     a Session (id, socket, reader thread) in a registry guarded by a
//     kNetSession-ranked mutex. Reader threads are cheap — they spend
//     their lives blocked in recv().
//   * a reader thread parses one frame at a time and dispatches query
//     evaluation onto the server's exec::ThreadPool, then waits for the
//     result before reading the next frame — requests on one connection
//     are strictly ordered, concurrency comes from having many
//     connections share the pool.
//   * per-request deadline/budget/thread options overlay the server's
//     base EvalOptions, so the PR-5 admission machinery (queueing,
//     degrade-to-serial, typed kUnavailable sheds with retry-after
//     hints) and the PR-4 governor (PARTIAL results) are end-to-end
//     visible on the wire.
//   * CREATE VIEW queries mutate the schema, which concurrent readers
//     scan unlocked; a server-wide SharedMutex (rank kNetSchemaGate)
//     serializes them: shared for reads, exclusive for view creation.
//   * with a PagedStore attached (ServerOptions::store), a schema
//     mutation is written through to the store — diffed, committed,
//     fsynced — while the exclusive gate is still held, BEFORE the
//     client is acknowledged: a committed response is a durable
//     response. A failed write-through degrades the server to
//     read-only (reads keep serving, writes shed typed kUnavailable
//     with a retry-after hint) instead of aborting.
//   * graceful drain: BeginDrain() stops accepting and closes the
//     listener, lets every already-accepted query finish and be
//     answered, and sheds queries arriving after the drain began with
//     typed kUnavailable — WaitForDrainIdle() is the barrier a
//     controlled shutdown (lyric_serverd's SIGTERM path) waits on
//     before Stop().
//   * every server -> client frame stamps the current HealthState into
//     header byte 6, and a kHealth probe returns the full HealthInfo
//     (state, recovery stats, live load) so clients can watch a boot
//     or a drain from outside.
//   * protocol violations get a best-effort kError frame and the
//     connection is closed; transport failures (including injected
//     LYRIC_FAULT=net faults) drop the connection. Either way the
//     session is reaped — Stop() and the fault tests assert nothing
//     leaks.
//
// Observability: connection counts ride the net.connections.* counters
// and the net.connections.active gauge, per-frame service time lands in
// the net.frame.latency histogram, and protocol violations count into
// net.protocol_errors — all in the PR-6 registry, so `.metrics` /
// lyric_stats / the Prometheus flusher see the server for free.

#ifndef LYRIC_NET_SERVER_H_
#define LYRIC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "object/database.h"
#include "query/evaluator.h"
#include "util/sync.h"

namespace lyric {

namespace storage {
class PagedStore;
}  // namespace storage

namespace net {

/// Server knobs.
struct ServerOptions {
  /// Bind address; loopback by default (a reproduction, not a product —
  /// there is no authentication on this protocol).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read Server::port() after Start.
  uint16_t port = 0;
  /// Workers in the evaluation pool requests are dispatched onto.
  /// 0 = exec::ThreadPool::HardwareThreads().
  size_t exec_threads = 0;
  /// Receive-side frame payload cap.
  uint32_t max_payload_bytes = kMaxPayloadBytes;
  /// Base evaluation options; per-request fields overlay these. The
  /// server never retries internally (retry is forced off unless set
  /// here explicitly): sheds travel to the client, whose RetryPolicy
  /// owns backoff.
  EvalOptions eval;
  /// Admission goes through this scheduler when set (tests); the
  /// process-wide QueryScheduler::Global() otherwise.
  exec::QueryScheduler* scheduler = nullptr;
  /// When set, the server is store-backed: schema mutations write
  /// through to this store (SyncDatabase + commit + fsync) under the
  /// exclusive schema gate before the client is acknowledged. Not
  /// owned; must outlive the server. The caller hydrates `db` from the
  /// store before Start.
  storage::PagedStore* store = nullptr;
  /// Retry-after hint (ms) on queries shed because a drain is in
  /// progress — "come back to the restarted process / another replica".
  uint64_t drain_retry_after_ms = 50;
  /// Retry-after hint (ms) on writes shed in read-only mode — the
  /// store needs operator attention, so back off harder.
  uint64_t read_only_retry_after_ms = 1000;
};

/// The server. Start() returns once the listener is live; Stop() (or the
/// destructor) tears down every session and joins every thread.
class Server {
 public:
  explicit Server(Database* db, ServerOptions options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, spawns the pool and the accept thread. InvalidArgument if
  /// already started; bind failures pass through.
  Status Start();

  /// Idempotent full teardown: stops accepting, shuts down every
  /// session's socket, joins reader threads, drains the pool.
  void Stop();

  /// Starts a graceful drain (idempotent): stops accepting (the
  /// listener is closed, so new connects are refused at the TCP
  /// level), lets already-accepted queries finish and be answered, and
  /// sheds queries arriving afterwards with typed kUnavailable +
  /// retry-after. Sessions stay open so those sheds reach their
  /// clients; call WaitForDrainIdle then Stop to finish. Like Stop,
  /// must be driven from the control thread.
  void BeginDrain();

  /// Blocks until no accepted query is still evaluating, or
  /// `timeout_ms` elapses. Returns true when idle was reached.
  bool WaitForDrainIdle(uint64_t timeout_ms) LYRIC_EXCLUDES(lifecycle_mu_);

  /// Degrades the server to read-only with `cause` (idempotent): reads
  /// keep serving, schema mutations shed typed kUnavailable. Entered
  /// automatically when a store write-through fails; exposed so a
  /// supervisor can force it.
  void EnterReadOnly(const Status& cause) LYRIC_EXCLUDES(lifecycle_mu_);

  /// The lifecycle state stamped into every outgoing frame header.
  HealthState health() const;
  /// The full health report a kHealth probe returns.
  HealthInfo BuildHealthInfo() LYRIC_EXCLUDES(lifecycle_mu_);

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }
  /// Accepted queries currently evaluating (or having their response
  /// written). The drain barrier waits for this to hit zero.
  uint64_t in_flight_queries() const LYRIC_EXCLUDES(lifecycle_mu_);

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  /// Live (not yet reaped) sessions. 0 after Stop, and — the fault-gate
  /// contract — 0 once every client has disconnected, faults included.
  size_t active_sessions() const LYRIC_EXCLUDES(mu_);
  /// Lifetime accepted-connection count.
  uint64_t sessions_opened() const {
    return sessions_opened_.load(std::memory_order_relaxed);
  }

 private:
  /// One connection: identity, transport, and its reader thread.
  struct Session {
    uint64_t id = 0;
    Socket socket;
    std::thread reader;
    /// Set by the reader as its last act; the accept loop and Stop reap
    /// (join + erase) sessions whose flag is up.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Session* session);
  /// Write-through after a successful schema mutation; called on a pool
  /// worker holding the exclusive schema gate. Non-OK poisons -> the
  /// server enters read-only and the status becomes the response.
  Status SyncStore() LYRIC_EXCLUDES(lifecycle_mu_);
  /// The degraded-mode cause message ("" while healthy).
  std::string DegradedCauseMessage() const LYRIC_EXCLUDES(lifecycle_mu_);
  /// Reads and serves one frame. Non-OK means the connection is finished
  /// (clean close, transport failure, or protocol violation).
  Status ServeOneFrame(Session* session);
  /// Evaluates one request under the schema gate; never throws.
  QueryResponse HandleQuery(const QueryRequest& req);
  Status SendFrame(Socket& socket, FrameType type,
                   const std::string& payload);
  /// Best-effort kError frame; the caller closes the connection.
  void SendProtocolError(Socket& socket, const Status& violation);

  /// Joins and erases sessions whose reader has finished.
  void ReapFinished() LYRIC_EXCLUDES(mu_);

  Database* db_;
  ServerOptions options_;
  Listener listener_;
  uint16_t port_ = 0;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> read_only_{false};
  /// kStarting until Start succeeds, then kServing; draining_/read_only_
  /// take display precedence (see health()).
  std::atomic<uint8_t> base_health_{
      static_cast<uint8_t>(HealthState::kStarting)};
  std::atomic<uint64_t> sessions_opened_{0};

  /// Lifecycle state: the in-flight count the drain barrier waits on,
  /// and the degraded-mode cause. Rank kNetLifecycle (8) — above the
  /// schema gate (6), because a failed write-through enters read-only
  /// while still holding the exclusive gate.
  mutable sync::Mutex lifecycle_mu_{sync::LockRank::kNetLifecycle,
                                    "net_lifecycle"};
  sync::CondVar drain_idle_cv_;
  uint64_t in_flight_ LYRIC_GUARDED_BY(lifecycle_mu_) = 0;
  Status degraded_cause_ LYRIC_GUARDED_BY(lifecycle_mu_);

  mutable sync::Mutex mu_{sync::LockRank::kNetSession, "net_session"};
  std::map<uint64_t, std::unique_ptr<Session>> sessions_
      LYRIC_GUARDED_BY(mu_);
  uint64_t next_session_id_ LYRIC_GUARDED_BY(mu_) = 1;

  /// Readers share, CREATE VIEW excludes. Acquired on pool workers for
  /// the duration of one evaluation; ranked before every lock evaluation
  /// takes (docs/CONCURRENCY.md).
  sync::SharedMutex schema_gate_{sync::LockRank::kNetSchemaGate,
                                 "net_schema_gate"};
};

/// True when `query` starts (after whitespace and `--` comments) with a
/// schema-mutating keyword (CREATE); such queries take the schema gate
/// exclusively. Exposed for tests.
bool IsSchemaMutation(const std::string& query);

}  // namespace net
}  // namespace lyric

#endif  // LYRIC_NET_SERVER_H_
