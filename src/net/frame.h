// The lyric_serverd wire protocol: length-prefixed binary frames.
//
// Every message on a connection is one frame:
//
//   offset  size  field
//   0       4     magic   'L' 'Y' 'R' 'C' (raw bytes, not an integer)
//   4       1     version (kProtocolVersion; mismatch is a protocol error)
//   5       1     type    (FrameType)
//   6       1     health  — server -> client frames carry the server's
//                 HealthState here (formerly reserved; 0 = unknown, the
//                 value clients always saw, so old receivers that ignore
//                 the byte per the original compat rule are unaffected,
//                 and unknown values decode as kUnknown)
//   7       1     reserved — senders MUST write 0, receivers ignore it
//                 (the forward-compat escape hatch: a future version can
//                 assign flag bits without breaking old receivers)
//   8       4     payload length, little-endian (bounded by
//                 kMaxPayloadBytes; larger is a protocol error)
//   12      ...   payload
//
// All multi-byte integers are little-endian. Strings are a u32 byte
// length followed by the bytes (no terminator). Payload layouts are
// documented field-by-field in docs/SERVER.md; the encoders/decoders
// below are the single source of truth.
//
// Decoders never trust input: every read is bounds-checked, string
// lengths are validated against the remaining payload, and trailing
// garbage after a well-formed payload is rejected — the same code paths
// back the fuzz harness (tests/fuzz/fuzz_frame.cc), so "malformed bytes
// in, typed Status out" is a fuzz-enforced contract.

#ifndef LYRIC_NET_FRAME_H_
#define LYRIC_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "query/result_set.h"
#include "util/result.h"
#include "util/status.h"

namespace lyric {
namespace net {

inline constexpr char kMagic[4] = {'L', 'Y', 'R', 'C'};
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound a receiver accepts for one payload. Large enough for any
/// real result page, small enough that a corrupt length prefix cannot
/// make the receiver allocate gigabytes.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

/// Frame discriminator (header byte 5).
enum class FrameType : uint8_t {
  /// Client -> server: execute a query (QueryRequest payload).
  kQuery = 1,
  /// Server -> client: the outcome of a kQuery (QueryResponse payload).
  kResult = 2,
  /// Client -> server: liveness probe, empty payload.
  kPing = 3,
  /// Server -> client: answer to kPing, empty payload.
  kPong = 4,
  /// Server -> client: the connection violated the protocol (bad magic,
  /// unsupported version, oversized frame, undecodable payload). Payload
  /// is a WireError; the server closes the connection after sending it.
  kError = 5,
  /// Client -> server: health / readiness probe, empty payload.
  kHealth = 6,
  /// Server -> client: answer to kHealth (HealthInfo payload).
  kHealthInfo = 7,
};

/// Server lifecycle state, carried in header byte 6 of every
/// server -> client frame and reported in full by kHealthInfo.
enum class HealthState : uint8_t {
  /// No state available (also what pre-health servers appear to send).
  kUnknown = 0,
  /// Process up, store not yet opened / database not yet hydrated.
  kStarting = 1,
  /// WAL replay / store hydration in progress.
  kRecovering = 2,
  /// Accepting connections and serving reads and writes.
  kServing = 3,
  /// SIGTERM received: not accepting, draining in-flight queries,
  /// shedding new ones typed.
  kDraining = 4,
  /// Store poisoned (fsync error, ENOSPC): reads serve, writes shed.
  kReadOnly = 5,
};

/// Stable lower-case name ("serving", "read_only", ...) for logs/JSON.
const char* HealthStateName(HealthState state);

/// Decoded frame header.
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kQuery;
  /// Header byte 6; kUnknown on client -> server frames and from
  /// servers predating the health protocol.
  HealthState health = HealthState::kUnknown;
  uint32_t payload_len = 0;
};

/// Serializes a header into `out[kFrameHeaderBytes]`. `health` stamps
/// byte 6 (server -> client frames); clients leave it kUnknown.
void EncodeFrameHeader(FrameType type, uint32_t payload_len, char* out,
                       HealthState health = HealthState::kUnknown);

/// Parses the 12 header bytes. Protocol violations return
/// kInvalidArgument with a message naming the violated rule (bad magic /
/// unsupported version / unknown frame type / payload too large).
Status DecodeFrameHeader(const char* data, size_t len, uint32_t max_payload,
                         FrameHeader* out);

/// A query as it travels client -> server. Unset optionals leave the
/// server's configured EvalOptions defaults in force.
struct QueryRequest {
  std::string query;
  /// Wall-clock deadline for the evaluation, propagated into
  /// EvalOptions::deadline_ms (and from there into the admission
  /// request's declared deadline).
  std::optional<uint64_t> deadline_ms;
  /// Kernel memory budget in bytes (EvalOptions::memory_budget).
  std::optional<uint64_t> memory_budget;
  /// Worker threads for this query; 0 keeps the server default.
  uint32_t threads = 0;
  /// Row cap; 0 keeps the server default.
  uint64_t max_rows = 0;
  /// Run the static analyzer first (diagnostics ride the response).
  bool analyze_first = false;

  bool operator==(const QueryRequest&) const = default;
};

std::string EncodeQueryRequest(const QueryRequest& req);
Status DecodeQueryRequest(const std::string& payload, QueryRequest* out);

/// The outcome of one query as it travels server -> client.
struct QueryResponse {
  /// Evaluation status. kUnavailable sheds carry the scheduler's
  /// retry-after hint (Status::retry_after_ms), which the client's
  /// RetryPolicy honors as a backoff lower bound.
  Status status;
  /// ResultSet::ToString(): the rendered table, including the
  /// "-- PARTIAL" trailer and governor report when a limit tripped.
  /// Empty when !status.ok().
  std::string rendered;
  uint64_t row_count = 0;
  bool truncated = false;
  /// Diagnostic::ToString() per pre-flight finding (analyze_first).
  std::vector<std::string> diagnostics;
  /// Governor trip code (StatusCode as int, 0 = untripped) + report.
  int32_t governor_code = 0;
  std::string governor_report;
  /// Admission report: how the server's scheduler treated the query.
  std::string admission_mode = "off";
  uint64_t queue_wait_ns = 0;
  uint32_t threads_used = 1;
  uint32_t server_retries = 0;

  /// The deterministic face of the response: status, rendered table,
  /// truncation flag, diagnostics. Byte-identical across serial, parallel
  /// and remote evaluation of the same query over the same data; timing
  /// and admission fields are deliberately excluded. Differential tests
  /// and lyric_loadgen compare these.
  std::string Fingerprint() const;
};

std::string EncodeQueryResponse(const QueryResponse& resp);
Status DecodeQueryResponse(const std::string& payload, QueryResponse* out);

/// Builds the wire response for one evaluation outcome — shared by the
/// server and by tests/loadgen computing expected responses, so both
/// sides serialize identically by construction.
QueryResponse ResponseFromResult(const Result<ResultSet>& result);

/// kHealthInfo payload: the server's lifecycle state plus recovery and
/// load stats, so clients/loadgen can probe readiness and chaos tests
/// can assert on recovery counters.
struct HealthInfo {
  HealthState state = HealthState::kUnknown;
  /// True when the server fronts a PagedStore (--store).
  bool store_backed = false;
  bool read_only = false;
  bool draining = false;
  /// What WAL replay found at boot (zero without --store).
  uint64_t recovered_txns = 0;
  uint64_t recovered_images = 0;
  uint64_t torn_tail_bytes = 0;
  /// Live load.
  uint64_t active_sessions = 0;
  uint64_t in_flight_queries = 0;
  uint64_t sessions_opened = 0;
  /// Human-readable cause when degraded (e.g. the poisoning status).
  std::string detail;

  bool operator==(const HealthInfo&) const = default;
};

std::string EncodeHealthInfo(const HealthInfo& info);
Status DecodeHealthInfo(const std::string& payload, HealthInfo* out);

/// kError payload: a typed status describing the protocol violation.
struct WireError {
  StatusCode code = StatusCode::kInvalidArgument;
  std::string message;
};

std::string EncodeWireError(const WireError& err);
Status DecodeWireError(const std::string& payload, WireError* out);

// -- Bounds-checked payload primitives -------------------------------------
// Exposed for the fuzz harness and protocol tests; production code uses
// the typed encoders above.

/// Appends little-endian scalars / length-prefixed strings to a buffer.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(const std::string& s);

  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Consumes a payload front to back; every getter returns false instead
/// of reading past the end.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : data_(payload) {}

  bool U8(uint8_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  /// Reads a length-prefixed string; fails when the prefix runs past the
  /// remaining bytes (a truncated or lying length).
  bool Str(std::string* s);
  /// True when the whole payload was consumed (decoders require this —
  /// trailing bytes mean a layout mismatch).
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace net
}  // namespace lyric

#endif  // LYRIC_NET_FRAME_H_
