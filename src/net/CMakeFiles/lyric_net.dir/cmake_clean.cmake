file(REMOVE_RECURSE
  "CMakeFiles/lyric_net.dir/client.cc.o"
  "CMakeFiles/lyric_net.dir/client.cc.o.d"
  "CMakeFiles/lyric_net.dir/frame.cc.o"
  "CMakeFiles/lyric_net.dir/frame.cc.o.d"
  "CMakeFiles/lyric_net.dir/server.cc.o"
  "CMakeFiles/lyric_net.dir/server.cc.o.d"
  "CMakeFiles/lyric_net.dir/socket.cc.o"
  "CMakeFiles/lyric_net.dir/socket.cc.o.d"
  "liblyric_net.a"
  "liblyric_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
