# Empty dependencies file for lyric_net.
# This may be replaced when dependencies are built.
