
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/client.cc" "src/net/CMakeFiles/lyric_net.dir/client.cc.o" "gcc" "src/net/CMakeFiles/lyric_net.dir/client.cc.o.d"
  "/root/repo/src/net/frame.cc" "src/net/CMakeFiles/lyric_net.dir/frame.cc.o" "gcc" "src/net/CMakeFiles/lyric_net.dir/frame.cc.o.d"
  "/root/repo/src/net/server.cc" "src/net/CMakeFiles/lyric_net.dir/server.cc.o" "gcc" "src/net/CMakeFiles/lyric_net.dir/server.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/lyric_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/lyric_net.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/query/CMakeFiles/lyric_query.dir/DependInfo.cmake"
  "/root/repo/src/exec/CMakeFiles/lyric_exec.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/lyric_obs.dir/DependInfo.cmake"
  "/root/repo/src/object/CMakeFiles/lyric_object.dir/DependInfo.cmake"
  "/root/repo/src/constraint/CMakeFiles/lyric_constraint.dir/DependInfo.cmake"
  "/root/repo/src/arith/CMakeFiles/lyric_arith.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/lyric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
