file(REMOVE_RECURSE
  "liblyric_net.a"
)
