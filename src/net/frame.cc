#include "net/frame.h"

#include <cstring>

namespace lyric {
namespace net {

namespace {

// Request flag bits (QueryRequest byte 0).
constexpr uint8_t kFlagHasDeadline = 1u << 0;
constexpr uint8_t kFlagHasBudget = 1u << 1;
constexpr uint8_t kFlagAnalyzeFirst = 1u << 2;

// Response presence bit: a result body follows the status triple.
constexpr uint8_t kFlagHasResult = 1u << 0;

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kHealthInfo);
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kRecovering:
      return "recovering";
    case HealthState::kServing:
      return "serving";
    case HealthState::kDraining:
      return "draining";
    case HealthState::kReadOnly:
      return "read_only";
    case HealthState::kUnknown:
      break;
  }
  return "unknown";
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

bool WireReader::U8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::U32(uint32_t* v) {
  if (pos_ + 4 > data_.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool WireReader::U64(uint64_t* v) {
  if (pos_ + 8 > data_.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool WireReader::Str(std::string* s) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (pos_ + len > data_.size()) return false;  // Lying length prefix.
  s->assign(data_, pos_, len);
  pos_ += len;
  return true;
}

void EncodeFrameHeader(FrameType type, uint32_t payload_len, char* out,
                       HealthState health) {
  std::memcpy(out, kMagic, 4);
  out[4] = static_cast<char>(kProtocolVersion);
  out[5] = static_cast<char>(type);
  out[6] = static_cast<char>(health);
  out[7] = 0;
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<char>((payload_len >> (8 * i)) & 0xff);
  }
}

Status DecodeFrameHeader(const char* data, size_t len, uint32_t max_payload,
                         FrameHeader* out) {
  if (len < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame: truncated header (" +
                                   std::to_string(len) + " of 12 bytes)");
  }
  if (std::memcmp(data, kMagic, 4) != 0) {
    return Status::InvalidArgument("frame: bad magic (not a LyriC stream)");
  }
  const uint8_t version = static_cast<uint8_t>(data[4]);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "frame: unsupported protocol version " + std::to_string(version) +
        " (this server speaks " + std::to_string(kProtocolVersion) + ")");
  }
  const uint8_t type = static_cast<uint8_t>(data[5]);
  if (!ValidFrameType(type)) {
    return Status::InvalidArgument("frame: unknown frame type " +
                                   std::to_string(type));
  }
  // Byte 6 carries the sender's HealthState (kUnknown from clients and
  // pre-health servers); values past the known range decode as kUnknown
  // so a newer sender cannot break us. Byte 7 stays reserved/ignored.
  const uint8_t health_byte = static_cast<uint8_t>(data[6]);
  const HealthState health =
      health_byte <= static_cast<uint8_t>(HealthState::kReadOnly)
          ? static_cast<HealthState>(health_byte)
          : HealthState::kUnknown;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(data[8 + i]))
                   << (8 * i);
  }
  if (payload_len > max_payload) {
    return Status::InvalidArgument(
        "frame: payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_payload) + "-byte cap");
  }
  out->version = version;
  out->type = static_cast<FrameType>(type);
  out->health = health;
  out->payload_len = payload_len;
  return Status::OK();
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  WireWriter w;
  uint8_t flags = 0;
  if (req.deadline_ms.has_value()) flags |= kFlagHasDeadline;
  if (req.memory_budget.has_value()) flags |= kFlagHasBudget;
  if (req.analyze_first) flags |= kFlagAnalyzeFirst;
  w.U8(flags);
  w.U64(req.deadline_ms.value_or(0));
  w.U64(req.memory_budget.value_or(0));
  w.U32(req.threads);
  w.U64(req.max_rows);
  w.Str(req.query);
  return w.Take();
}

Status DecodeQueryRequest(const std::string& payload, QueryRequest* out) {
  WireReader r(payload);
  uint8_t flags = 0;
  uint64_t deadline_ms = 0;
  uint64_t memory_budget = 0;
  QueryRequest req;
  if (!r.U8(&flags) || !r.U64(&deadline_ms) || !r.U64(&memory_budget) ||
      !r.U32(&req.threads) || !r.U64(&req.max_rows) || !r.Str(&req.query)) {
    return Status::InvalidArgument("frame: truncated QueryRequest payload");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "frame: trailing bytes after QueryRequest payload");
  }
  if ((flags & kFlagHasDeadline) != 0) req.deadline_ms = deadline_ms;
  if ((flags & kFlagHasBudget) != 0) req.memory_budget = memory_budget;
  req.analyze_first = (flags & kFlagAnalyzeFirst) != 0;
  *out = std::move(req);
  return Status::OK();
}

std::string EncodeQueryResponse(const QueryResponse& resp) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(resp.status.code()));
  w.Str(resp.status.message());
  w.U64(resp.status.retry_after_ms());
  uint8_t flags = resp.status.ok() ? kFlagHasResult : 0;
  w.U8(flags);
  if ((flags & kFlagHasResult) != 0) {
    w.Str(resp.rendered);
    w.U64(resp.row_count);
    w.U8(resp.truncated ? 1 : 0);
    w.U32(static_cast<uint32_t>(resp.diagnostics.size()));
    for (const std::string& diag : resp.diagnostics) w.Str(diag);
    w.U32(static_cast<uint32_t>(resp.governor_code));
    w.Str(resp.governor_report);
    w.Str(resp.admission_mode);
    w.U64(resp.queue_wait_ns);
    w.U32(resp.threads_used);
    w.U32(resp.server_retries);
  }
  return w.Take();
}

Status DecodeQueryResponse(const std::string& payload, QueryResponse* out) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  uint64_t retry_after_ms = 0;
  uint8_t flags = 0;
  if (!r.U32(&code) || !r.Str(&message) || !r.U64(&retry_after_ms) ||
      !r.U8(&flags)) {
    return Status::InvalidArgument("frame: truncated QueryResponse payload");
  }
  // kDataLoss is the last code: a store-backed server may surface it
  // (e.g. a corrupt store detected mid-serve), so it must travel.
  if (code > static_cast<uint32_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument("frame: unknown status code " +
                                   std::to_string(code));
  }
  QueryResponse resp;
  resp.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (retry_after_ms != 0) {
    resp.status = resp.status.WithRetryAfter(retry_after_ms);
  }
  if ((flags & kFlagHasResult) != 0) {
    uint8_t truncated = 0;
    uint32_t n_diags = 0;
    if (!r.Str(&resp.rendered) || !r.U64(&resp.row_count) ||
        !r.U8(&truncated) || !r.U32(&n_diags)) {
      return Status::InvalidArgument(
          "frame: truncated QueryResponse result body");
    }
    // A lying count cannot run the reader past the payload (Str is
    // bounds-checked), but cap it anyway so a 4-billion count cannot
    // force 4 billion loop iterations on a short payload.
    if (n_diags > payload.size()) {
      return Status::InvalidArgument(
          "frame: diagnostic count exceeds payload size");
    }
    resp.truncated = truncated != 0;
    resp.diagnostics.reserve(n_diags);
    for (uint32_t i = 0; i < n_diags; ++i) {
      std::string diag;
      if (!r.Str(&diag)) {
        return Status::InvalidArgument(
            "frame: truncated QueryResponse diagnostic");
      }
      resp.diagnostics.push_back(std::move(diag));
    }
    uint32_t governor_code = 0;
    if (!r.U32(&governor_code) || !r.Str(&resp.governor_report) ||
        !r.Str(&resp.admission_mode) || !r.U64(&resp.queue_wait_ns) ||
        !r.U32(&resp.threads_used) || !r.U32(&resp.server_retries)) {
      return Status::InvalidArgument(
          "frame: truncated QueryResponse report section");
    }
    resp.governor_code = static_cast<int32_t>(governor_code);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "frame: trailing bytes after QueryResponse payload");
  }
  *out = std::move(resp);
  return Status::OK();
}

std::string QueryResponse::Fingerprint() const {
  std::string out = "status: " + status.ToString();
  out += "\n" + rendered;
  out += "\ntruncated=";
  out += truncated ? "yes" : "no";
  for (const std::string& diag : diagnostics) {
    out += "\n" + diag;
  }
  return out;
}

QueryResponse ResponseFromResult(const Result<ResultSet>& result) {
  QueryResponse resp;
  if (!result.ok()) {
    resp.status = result.status();
    return resp;
  }
  const ResultSet& rs = *result;
  resp.rendered = rs.ToString();
  resp.row_count = rs.size();
  resp.truncated = rs.truncated();
  for (const Diagnostic& diag : rs.diagnostics()) {
    resp.diagnostics.push_back(diag.ToString());
  }
  resp.governor_code = static_cast<int32_t>(rs.governor_status().code());
  if (!rs.governor_status().ok()) {
    resp.governor_report = rs.governor_report().ToString();
  }
  resp.admission_mode = rs.admission().mode;
  resp.queue_wait_ns = rs.admission().queue_wait_ns;
  resp.threads_used = rs.admission().threads;
  resp.server_retries = rs.admission().retries;
  return resp;
}

namespace {
// HealthInfo flag bits (byte 1).
constexpr uint8_t kFlagStoreBacked = 1u << 0;
constexpr uint8_t kFlagReadOnly = 1u << 1;
constexpr uint8_t kFlagDraining = 1u << 2;
}  // namespace

std::string EncodeHealthInfo(const HealthInfo& info) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(info.state));
  uint8_t flags = 0;
  if (info.store_backed) flags |= kFlagStoreBacked;
  if (info.read_only) flags |= kFlagReadOnly;
  if (info.draining) flags |= kFlagDraining;
  w.U8(flags);
  w.U64(info.recovered_txns);
  w.U64(info.recovered_images);
  w.U64(info.torn_tail_bytes);
  w.U64(info.active_sessions);
  w.U64(info.in_flight_queries);
  w.U64(info.sessions_opened);
  w.Str(info.detail);
  return w.Take();
}

Status DecodeHealthInfo(const std::string& payload, HealthInfo* out) {
  WireReader r(payload);
  uint8_t state = 0;
  uint8_t flags = 0;
  HealthInfo info;
  if (!r.U8(&state) || !r.U8(&flags) || !r.U64(&info.recovered_txns) ||
      !r.U64(&info.recovered_images) || !r.U64(&info.torn_tail_bytes) ||
      !r.U64(&info.active_sessions) || !r.U64(&info.in_flight_queries) ||
      !r.U64(&info.sessions_opened) || !r.Str(&info.detail)) {
    return Status::InvalidArgument("frame: truncated HealthInfo payload");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "frame: trailing bytes after HealthInfo payload");
  }
  // A state from a newer server decodes as kUnknown, same compat rule as
  // the header byte.
  info.state = state <= static_cast<uint8_t>(HealthState::kReadOnly)
                   ? static_cast<HealthState>(state)
                   : HealthState::kUnknown;
  info.store_backed = (flags & kFlagStoreBacked) != 0;
  info.read_only = (flags & kFlagReadOnly) != 0;
  info.draining = (flags & kFlagDraining) != 0;
  *out = std::move(info);
  return Status::OK();
}

std::string EncodeWireError(const WireError& err) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(err.code));
  w.Str(err.message);
  return w.Take();
}

Status DecodeWireError(const std::string& payload, WireError* out) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  if (!r.U32(&code) || !r.Str(&message) || !r.AtEnd()) {
    return Status::InvalidArgument("frame: malformed WireError payload");
  }
  if (code > static_cast<uint32_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument("frame: unknown status code " +
                                   std::to_string(code));
  }
  out->code = static_cast<StatusCode>(code);
  out->message = std::move(message);
  return Status::OK();
}

}  // namespace net
}  // namespace lyric
