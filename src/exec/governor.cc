#include "exec/governor.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace exec {

namespace {

thread_local CancellationToken* t_current_token = nullptr;

std::optional<uint64_t> EnvUint64(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(value);
}

void CountTrip(LimitKind kind) {
  obs::Registry::Global()
      .GetCounter(std::string("governor.trips.") + LimitKindToString(kind))
      .Increment();
  static obs::Counter& total =
      obs::Registry::Global().GetCounter("governor.trips");
  total.Increment();
}

}  // namespace

const char* LimitKindToString(LimitKind kind) {
  switch (kind) {
    case LimitKind::kNone:
      return "none";
    case LimitKind::kDeadline:
      return "deadline";
    case LimitKind::kMemory:
      return "memory";
    case LimitKind::kPivots:
      return "pivots";
    case LimitKind::kDisjuncts:
      return "disjuncts";
  }
  return "unknown";
}

const GovernorLimits& GovernorLimits::FromEnv() {
  static const GovernorLimits* limits = [] {
    auto* env = new GovernorLimits();
    env->deadline_ms = EnvUint64("LYRIC_DEADLINE_MS");
    env->memory_budget = EnvUint64("LYRIC_MEMORY_BUDGET");
    return env;
  }();
  return *limits;
}

std::string GovernorReport::ToString() const {
  std::string out = "governor: ";
  if (tripped == LimitKind::kNone) {
    out += "ok";
  } else {
    out += "tripped ";
    out += LimitKindToString(tripped);
    if (!site.empty()) {
      out += " at ";
      out += site;
    }
  }
  out += " after ";
  out += std::to_string(elapsed_ms);
  out += "ms (bindings=";
  out += std::to_string(bindings_scanned);
  out += " pivots=";
  out += std::to_string(pivots_used);
  out += " memory=";
  out += std::to_string(memory_used);
  out += "B disjuncts=";
  out += std::to_string(disjuncts_used);
  out += ")";
  return out;
}

CancellationToken::CancellationToken(const GovernorLimits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {
  if (limits_.deadline_ms.has_value()) {
    deadline_at_ = start_ + std::chrono::milliseconds(*limits_.deadline_ms);
  }
}

void CancellationToken::Trip(LimitKind kind, const char* site) {
  uint8_t expected = static_cast<uint8_t>(LimitKind::kNone);
  if (tripped_.compare_exchange_strong(expected, static_cast<uint8_t>(kind),
                                       std::memory_order_acq_rel)) {
    {
      sync::MutexLock lock(site_mu_);
      trip_site_ = site;
    }
    CountTrip(kind);
  }
}

bool CancellationToken::AccountPivots(uint64_t n, const char* site) {
  uint64_t total = pivots_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_pivots.has_value() && total > *limits_.max_pivots) {
    Trip(LimitKind::kPivots, site);
  }
  return stopped();
}

bool CancellationToken::AccountMemory(uint64_t bytes, const char* site) {
  // The fault site lets the fault-injection gate exercise the
  // budget-trip path without constructing a genuinely huge query.
  if (fault::Enabled() && limits_.memory_budget.has_value() &&
      fault::Inject(fault::kSiteAlloc)) {
    Trip(LimitKind::kMemory, site);
    return true;
  }
  uint64_t total = memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limits_.memory_budget.has_value() && total > *limits_.memory_budget) {
    Trip(LimitKind::kMemory, site);
  }
  return stopped();
}

bool CancellationToken::AccountDisjuncts(uint64_t n, const char* site) {
  uint64_t total = disjuncts_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_disjuncts.has_value() && total > *limits_.max_disjuncts) {
    Trip(LimitKind::kDisjuncts, site);
  }
  return stopped();
}

void CancellationToken::AccountBinding() {
  bindings_.fetch_add(1, std::memory_order_relaxed);
}

bool CancellationToken::CheckDeadline(const char* site) {
  if (limits_.deadline_ms.has_value() && !stopped() &&
      std::chrono::steady_clock::now() >= deadline_at_) {
    Trip(LimitKind::kDeadline, site);
  }
  return stopped();
}

Status CancellationToken::Check(const char* site) {
  CheckDeadline(site);
  return ToStatus();
}

Status CancellationToken::ToStatus() const {
  LimitKind kind = tripped_kind();
  if (kind == LimitKind::kNone) return Status::OK();
  std::string site;
  {
    sync::MutexLock lock(site_mu_);
    site = trip_site_;
  }
  // Messages stay stable across serial/parallel runs: limit + first site
  // only, no data-dependent progress counters.
  std::string msg = "query exceeded ";
  msg += LimitKindToString(kind);
  msg += " limit (tripped at ";
  msg += site;
  msg += ")";
  if (kind == LimitKind::kDeadline) {
    return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::ResourceExhausted(std::move(msg));
}

std::optional<uint64_t> CancellationToken::LimitFor(LimitKind kind) const {
  switch (kind) {
    case LimitKind::kDeadline:
      return limits_.deadline_ms;
    case LimitKind::kMemory:
      return limits_.memory_budget;
    case LimitKind::kPivots:
      return limits_.max_pivots;
    case LimitKind::kDisjuncts:
      return limits_.max_disjuncts;
    case LimitKind::kNone:
      break;
  }
  return std::nullopt;
}

GovernorReport CancellationToken::Report() const {
  GovernorReport report;
  report.tripped = tripped_kind();
  {
    sync::MutexLock lock(site_mu_);
    report.site = trip_site_;
  }
  report.bindings_scanned = bindings_.load(std::memory_order_relaxed);
  report.pivots_used = pivots_.load(std::memory_order_relaxed);
  report.memory_used = memory_.load(std::memory_order_relaxed);
  report.disjuncts_used = disjuncts_.load(std::memory_order_relaxed);
  report.elapsed_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  return report;
}

GovernorScope::GovernorScope(CancellationToken* token)
    : previous_(t_current_token) {
  t_current_token = token;
}

GovernorScope::~GovernorScope() { t_current_token = previous_; }

CancellationToken* GovernorScope::Current() { return t_current_token; }

bool AccountPivots(uint64_t n, const char* site) {
  CancellationToken* token = GovernorScope::Current();
  if (token == nullptr) return false;
  return token->AccountPivots(n, site);
}

bool AccountKernelMemory(uint64_t bytes, const char* site) {
  CancellationToken* token = GovernorScope::Current();
  if (token == nullptr) return false;
  return token->AccountMemory(bytes, site);
}

bool AccountDisjuncts(uint64_t n, const char* site) {
  CancellationToken* token = GovernorScope::Current();
  if (token == nullptr) return false;
  return token->AccountDisjuncts(n, site);
}

}  // namespace exec
}  // namespace lyric
