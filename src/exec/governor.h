// QueryGovernor: per-query resource limits with cooperative cancellation.
//
// The §3 fragment design promises polynomial cost only inside the
// tractable constraint families; outside them (and on adversarial
// instances inside them) quantifier elimination and DNF expansion blow up
// — the failure mode the alibi-query case study (PAPERS.md) documents for
// real constraint-database workloads. A production engine must bound that
// work and degrade gracefully instead of hanging N worker threads or
// aborting on std::bad_alloc.
//
// The model (docs/ROBUSTNESS.md):
//
//   * A CancellationToken carries the per-query limits — wall-clock
//     deadline, kernel memory budget, simplex pivot cap, DNF disjunct cap
//     — plus the usage counters and the sticky "tripped" record.
//   * The evaluator installs the token as an *ambient* thread-local
//     (GovernorScope) on the query thread and on every worker inside its
//     chunk task, so the constraint kernels observe it without threading
//     a parameter through every call signature.
//   * Kernels check cooperatively: hot loops call the cheap counting
//     hooks (AccountPivots / AccountKernelMemory / AccountDisjuncts,
//     relaxed atomics), and every Result-bearing kernel entry point calls
//     CheckCancellation(site), which converts a trip into the typed
//     Status (kDeadlineExceeded / kResourceExhausted). Once tripped the
//     token stays tripped, so inner loops that cannot return a Status
//     simply stop producing work and the nearest Result checkpoint
//     reports the trip.
//   * A trip never corrupts shared state: the SolverCache only stores
//     verdicts that were computed fully (every store site is behind a
//     checkpoint), and the evaluator converts the trip Status into a
//     partial ResultSet carrying a GovernorReport (bindings scanned,
//     pivots used, which kernel site observed the trip).
//
// With no limits configured nothing is installed and every check is one
// thread_local load — bench_paper_queries' governed variant keeps the
// overhead visible (<5% is the CI budget).

#ifndef LYRIC_EXEC_GOVERNOR_H_
#define LYRIC_EXEC_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"
#include "util/sync.h"

namespace lyric {
namespace exec {

/// Which limit a governed query tripped.
enum class LimitKind : uint8_t {
  kNone = 0,
  kDeadline,
  kMemory,
  kPivots,
  kDisjuncts,
};

const char* LimitKindToString(LimitKind kind);

/// The per-query resource limits. Unset fields are unlimited.
struct GovernorLimits {
  /// Wall-clock deadline in milliseconds from token creation.
  std::optional<uint64_t> deadline_ms;
  /// Budget, in bytes, for kernel-accounted allocations (simplex tableau
  /// rows, Fourier-Motzkin atom generation, DNF disjunct bodies). This is
  /// an accounting bound on the dominant transient structures, not an
  /// RSS cap.
  std::optional<uint64_t> memory_budget;
  /// Cap on total simplex pivot operations across the query.
  std::optional<uint64_t> max_pivots;
  /// Cap on total DNF disjuncts materialized across the query.
  std::optional<uint64_t> max_disjuncts;

  bool Any() const {
    return deadline_ms.has_value() || memory_budget.has_value() ||
           max_pivots.has_value() || max_disjuncts.has_value();
  }

  /// The process-default limits from the environment, read once:
  /// LYRIC_DEADLINE_MS and LYRIC_MEMORY_BUDGET (bytes). Unset or
  /// unparseable variables leave the field unlimited.
  static const GovernorLimits& FromEnv();
};

/// Partial-progress diagnostics attached to a governed query's ResultSet
/// when a limit trips (and available from the token at any time).
struct GovernorReport {
  LimitKind tripped = LimitKind::kNone;
  /// The kernel check site that first observed the trip, e.g.
  /// "simplex.is_satisfiable" (empty when untripped).
  std::string site;
  uint64_t bindings_scanned = 0;
  uint64_t pivots_used = 0;
  uint64_t memory_used = 0;
  uint64_t disjuncts_used = 0;
  uint64_t elapsed_ms = 0;

  /// "governor: tripped deadline at simplex.is_satisfiable after 12ms
  ///  (bindings=3 pivots=4821 memory=18KB disjuncts=2)".
  std::string ToString() const;
};

/// Shared cancellation state for one governed query. Thread-safe: the
/// accounting hooks are relaxed atomics, Check samples the deadline.
/// Trips are sticky — once a limit is exceeded every subsequent Check
/// returns the same typed Status, so serial and parallel evaluations of
/// the same query report identical codes.
class CancellationToken {
 public:
  explicit CancellationToken(const GovernorLimits& limits);

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Cheap sticky-trip probe for loops that cannot return a Status.
  bool stopped() const {
    return tripped_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(LimitKind::kNone);
  }

  /// Records `n` simplex pivots; returns true when the token is (now)
  /// tripped and the caller should unwind.
  bool AccountPivots(uint64_t n, const char* site);
  /// Records `bytes` of kernel allocation.
  bool AccountMemory(uint64_t bytes, const char* site);
  /// Records `n` materialized DNF disjuncts.
  bool AccountDisjuncts(uint64_t n, const char* site);
  /// Records one candidate binding scanned (evaluator progress).
  void AccountBinding();

  /// Samples the wall clock against the deadline; trips when expired.
  /// Rate-limit externally (the kernels call this every few dozen
  /// iterations, the evaluator once per binding).
  bool CheckDeadline(const char* site);

  /// Full cooperative check: deadline sample + sticky trip. OK when the
  /// token has not tripped; otherwise the typed Status.
  Status Check(const char* site);

  /// The typed Status for the current trip (OK when untripped):
  /// kDeadlineExceeded for deadline trips, kResourceExhausted for
  /// memory/pivot/disjunct trips. Messages are stable — they name the
  /// limit and the first trip site, never data-dependent progress — so
  /// serial and parallel runs report byte-identical statuses.
  Status ToStatus() const;

  LimitKind tripped_kind() const {
    return static_cast<LimitKind>(tripped_.load(std::memory_order_acquire));
  }

  /// Trips the token directly with the given kind and site. Used by the
  /// SolverCache tombstone path: a recorded "too expensive" verdict fails
  /// the query fast by replaying the original trip (same kind, same site,
  /// hence a byte-identical ToStatus message) without re-burning the
  /// budget. Sticky like every other trip.
  void ForceTrip(LimitKind kind, const char* site) { Trip(kind, site); }

  /// The configured cap for `kind`, or nullopt when that limit is unset.
  std::optional<uint64_t> LimitFor(LimitKind kind) const;

  /// Usage snapshot (consistent enough for diagnostics; individual
  /// counters are exact).
  GovernorReport Report() const;

 private:
  /// Records the first trip (later trips keep the original kind/site).
  void Trip(LimitKind kind, const char* site);

  // Written only by the constructor; read-only afterwards.
  GovernorLimits limits_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_at_;  // Valid if deadline.
  std::atomic<uint64_t> pivots_{0};
  std::atomic<uint64_t> memory_{0};
  std::atomic<uint64_t> disjuncts_{0};
  std::atomic<uint64_t> bindings_{0};
  std::atomic<uint8_t> tripped_{static_cast<uint8_t>(LimitKind::kNone)};
  // Ranked after the cache shard: tombstone hits ForceTrip under the
  // shard lock (solver_cache.cc LookupTombstone).
  mutable sync::Mutex site_mu_{sync::LockRank::kGovernor, "governor_site"};
  std::string trip_site_ LYRIC_GUARDED_BY(site_mu_);
};

/// Installs a token as the current thread's ambient governor for the
/// scope's lifetime (restores the previous one on exit, so scopes nest).
/// The evaluator opens one on the query thread and one inside each worker
/// task; kernels read it through Current().
class GovernorScope {
 public:
  explicit GovernorScope(CancellationToken* token);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

  /// The token governing the current thread, or nullptr (ungoverned).
  static CancellationToken* Current();

 private:
  CancellationToken* previous_;
};

// -- Kernel-side hooks (free functions so call sites stay one line) --------

/// Returns the ambient token's trip Status (sampling the deadline), or OK
/// when ungoverned/untripped. Every Result-bearing kernel entry point
/// calls this on entry and before publishing a computed result.
inline Status CheckCancellation(const char* site) {
  CancellationToken* token = GovernorScope::Current();
  if (token == nullptr) return Status::OK();
  return token->Check(site);
}

/// True when the ambient token has tripped — for inner loops that cannot
/// return a Status and just stop producing work.
inline bool CancellationRequested() {
  CancellationToken* token = GovernorScope::Current();
  return token != nullptr && token->stopped();
}

/// Accounting hooks; no-ops when ungoverned. Each returns true when the
/// caller should unwind (the token is tripped).
bool AccountPivots(uint64_t n, const char* site);
bool AccountKernelMemory(uint64_t bytes, const char* site);
bool AccountDisjuncts(uint64_t n, const char* site);

}  // namespace exec
}  // namespace lyric

#endif  // LYRIC_EXEC_GOVERNOR_H_
