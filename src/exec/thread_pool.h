// A fixed-size worker pool for parallel query evaluation.
//
// The LyriC evaluator's hot loop is embarrassingly parallel: each candidate
// binding's WHERE-clause satisfiability/entailment test is an independent
// simplex/Fourier-Motzkin problem (the PTIME data-complexity argument of §5
// is per-tuple). The pool runs those per-chunk tasks concurrently; the
// evaluator merges chunk results back in input order so parallel output is
// byte-identical to serial output (see docs/PARALLELISM.md).
//
// The pool is deliberately small: submit closures, destruction drains the
// queue and joins. No futures, no work stealing — the evaluator partitions
// work into contiguous chunks up front and synchronizes per chunk with
// ChunkLatch below.

#ifndef LYRIC_EXEC_THREAD_POOL_H_
#define LYRIC_EXEC_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace lyric {
namespace exec {

/// A fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  /// Drains the queue (every submitted task runs) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks run in FIFO order across the workers; a task
  /// must not submit to the pool it runs on while the pool is being
  /// destroyed.
  void Submit(std::function<void()> task) LYRIC_EXCLUDES(mu_);

  /// The hardware concurrency, at least 1 (std::thread reports 0 when it
  /// cannot tell).
  static size_t HardwareThreads();

 private:
  void WorkerLoop() LYRIC_EXCLUDES(mu_);

  sync::Mutex mu_{sync::LockRank::kThreadPool, "thread_pool"};
  sync::CondVar cv_;
  std::deque<std::function<void()>> queue_ LYRIC_GUARDED_BY(mu_);
  bool shutting_down_ LYRIC_GUARDED_BY(mu_) = false;
  // Written only by the constructor, before any worker can observe it.
  std::vector<std::thread> workers_;
};

/// A one-shot countdown latch: the evaluator submits N chunk tasks, each
/// task counts down once, and the merging thread waits for a *prefix* of
/// chunks (WaitFor(k) returns once at least k chunks completed). Prefix
/// waiting lets the merge commit chunk i as soon as chunks 0..i are done,
/// without a full barrier over the whole batch.
class ChunkLatch {
 public:
  explicit ChunkLatch(size_t total)
      : total_(total), done_bits_(total, false) {}

  /// Marks one chunk (by index) complete.
  void Done(size_t chunk_index) LYRIC_EXCLUDES(mu_);

  /// Blocks until chunk `chunk_index` has completed.
  void WaitFor(size_t chunk_index) LYRIC_EXCLUDES(mu_);

  /// Blocks until every chunk has completed.
  void WaitAll() LYRIC_EXCLUDES(mu_);

 private:
  sync::Mutex mu_{sync::LockRank::kChunkLatch, "chunk_latch"};
  sync::CondVar cv_;
  const size_t total_;
  std::vector<bool> done_bits_ LYRIC_GUARDED_BY(mu_);
  size_t completed_ LYRIC_GUARDED_BY(mu_) = 0;
};

}  // namespace exec
}  // namespace lyric

#endif  // LYRIC_EXEC_THREAD_POOL_H_
