// QueryScheduler: process-wide admission control above the QueryGovernor.
//
// The per-query CancellationToken (governor.h) bounds ONE query; nothing
// stops a process from oversubscribing itself when many governed queries
// land at once — N queries each within its own memory budget can still
// sum past what the machine has, and N deadline-bearing queries stacked
// behind busy workers all expire together. The scheduler closes that gap
// with a cross-query ledger and a small admission state machine
// (docs/ROBUSTNESS.md):
//
//   admit    there is a free concurrency slot and the query's declared
//            memory budget fits the ledger -> run immediately.
//   queue    no slot (or no ledger headroom): park the arrival in a
//            deadline-aware priority queue — earliest declared deadline
//            first, FIFO (arrival order) among equal deadlines.
//   degrade  a grant made under pressure (the grant came off the queue,
//            or reserved memory exceeds half the ledger) is downgraded to
//            serial single-thread execution — finish more queries sooner
//            before starting to reject any.
//   shed     the queue is full, the queue timeout elapses, or the query's
//            own deadline expires while it waits: fail fast with a typed
//            kUnavailable Status carrying a computed retry-after hint
//            (never a half-run query — a shed query did zero work).
//
// Shedding is deliberately typed: kUnavailable is the only transient
// status in the system, so RetryPolicy (below) can retry shed queries and
// injected-fault failures while never retrying kDeadlineExceeded partials.
//
// With no limits configured (the default) Admit is a single mutex
// acquisition that increments the ledger — no queueing, no degradation —
// so unscheduled workloads keep their exact behavior.

#ifndef LYRIC_EXEC_SCHEDULER_H_
#define LYRIC_EXEC_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>

#include "util/result.h"
#include "util/status.h"
#include "util/sync.h"

namespace lyric {
namespace exec {

/// Process-wide admission limits. Unset fields are unlimited.
struct SchedulerLimits {
  /// Cap on concurrently executing scheduled queries. Unset = unlimited
  /// (admission never queues or sheds on concurrency).
  std::optional<uint64_t> max_concurrent;
  /// Cap on queries waiting for a slot; arrivals beyond it are shed.
  /// Unset defaults to kDefaultQueueCapacity when a cap is in force.
  std::optional<uint64_t> queue_capacity;
  /// Upper bound, in milliseconds, a query may wait in the queue before
  /// being shed. Unset = wait until granted (or until the query's own
  /// declared deadline expires).
  std::optional<uint64_t> queue_timeout_ms;
  /// Cap, in bytes, on the sum of admitted queries' declared memory
  /// budgets (the cross-query ledger). Unset = memory never gates
  /// admission.
  std::optional<uint64_t> max_total_memory;

  static constexpr uint64_t kDefaultQueueCapacity = 16;

  bool Any() const {
    return max_concurrent.has_value() || queue_capacity.has_value() ||
           queue_timeout_ms.has_value() || max_total_memory.has_value();
  }

  /// The process-default limits from the environment, read once:
  /// LYRIC_MAX_CONCURRENT, LYRIC_QUEUE_CAPACITY, LYRIC_QUEUE_TIMEOUT_MS,
  /// LYRIC_MAX_TOTAL_MEMORY (bytes). Unset or unparseable variables leave
  /// the field unlimited.
  static const SchedulerLimits& FromEnv();
};

/// What an arriving query declares about itself; the scheduler orders the
/// wait queue by deadline and gates admission on the memory budget.
struct AdmissionRequest {
  /// The query's declared wall-clock deadline (EvalOptions::deadline_ms).
  /// A queued query is shed when this much time elapses before a grant.
  std::optional<uint64_t> deadline_ms;
  /// The query's declared memory budget in bytes
  /// (EvalOptions::memory_budget); 0 when undeclared. Reserved in the
  /// ledger from grant to ticket release.
  uint64_t memory_budget = 0;
};

/// Point-in-time scheduler counters (shell `.admit` / `.stats`).
struct SchedulerStats {
  uint64_t admitted = 0;   ///< Grants (direct + from the queue), lifetime.
  uint64_t queued = 0;     ///< Arrivals that had to wait, lifetime.
  uint64_t shed = 0;       ///< Arrivals rejected with kUnavailable.
  uint64_t degraded = 0;   ///< Grants downgraded to serial execution.
  uint64_t expired = 0;    ///< Sheds caused by deadline/timeout in queue.
  uint64_t active = 0;     ///< Currently executing scheduled queries.
  uint64_t waiting = 0;    ///< Currently queued arrivals.
  uint64_t peak_active = 0;
  uint64_t reserved_memory = 0;  ///< Ledger: sum of admitted budgets.

  std::string ToString() const;
};

class QueryScheduler;

/// RAII admission slot. Holding an admitted ticket keeps one concurrency
/// slot and the declared memory budget reserved in the ledger; the
/// destructor (or Release) returns both and wakes queued waiters. A
/// default-constructed ticket is empty (nothing to release) — the
/// evaluator uses one for nested/unscheduled executions.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  /// True when this ticket holds a slot.
  bool admitted() const { return scheduler_ != nullptr; }
  /// True when the grant was made under pressure: the holder should run
  /// serially (threads=1) so the process finishes queries instead of
  /// oversubscribing workers.
  bool degraded() const { return degraded_; }
  /// Time this admission spent parked in the wait queue (0 for a direct
  /// grant). Feeds the per-query log record.
  uint64_t queue_wait_ns() const { return queue_wait_ns_; }

  /// Returns the slot and ledger reservation early; idempotent.
  void Release();

 private:
  friend class QueryScheduler;
  AdmissionTicket(QueryScheduler* scheduler, uint64_t memory, bool degraded)
      : scheduler_(scheduler), memory_(memory), degraded_(degraded) {}

  QueryScheduler* scheduler_ = nullptr;
  uint64_t memory_ = 0;
  bool degraded_ = false;
  uint64_t queue_wait_ns_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

/// The process-wide admission controller. Thread-safe; one Global()
/// instance serves the whole process, and tests construct private
/// instances (EvalOptions::scheduler).
class QueryScheduler {
 public:
  explicit QueryScheduler(const SchedulerLimits& limits = SchedulerLimits())
      : limits_(limits) {}
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// The process-wide instance, initialized from SchedulerLimits::FromEnv.
  static QueryScheduler& Global();

  /// Replaces the limits; applies to future admissions (queries already
  /// running or queued keep the terms they arrived under).
  void Configure(const SchedulerLimits& limits) LYRIC_EXCLUDES(mu_);
  SchedulerLimits limits() const LYRIC_EXCLUDES(mu_);

  /// Runs the admission state machine for one arriving query. Blocks
  /// while queued. Returns an admitted ticket, or:
  ///   * kUnavailable (+ retry-after hint) when shed — queue full, queue
  ///     timeout, declared deadline expired while queued, or the
  ///     `scheduler` fault site forced a shed;
  ///   * kResourceExhausted when the declared memory budget exceeds the
  ///     whole ledger and could never be admitted (not retryable).
  Result<AdmissionTicket> Admit(const AdmissionRequest& request)
      LYRIC_EXCLUDES(mu_);

  SchedulerStats stats() const LYRIC_EXCLUDES(mu_);

  /// Test helper: blocks until at least `count` arrivals are waiting in
  /// the queue, or `timeout_ms` elapses. Lets tests stage deterministic
  /// arrival orders. Returns whether the count was reached.
  bool WaitForWaiters(uint64_t count, uint64_t timeout_ms) const
      LYRIC_EXCLUDES(mu_);

 private:
  friend class AdmissionTicket;

  struct Waiter {
    uint64_t seq = 0;  ///< Arrival order; FIFO tie-break among deadlines.
    std::chrono::steady_clock::time_point deadline_at;  ///< Queue priority.
    bool has_deadline = false;
    uint64_t memory = 0;
    bool granted = false;
    bool degraded = false;
  };

  void Release(uint64_t memory, std::chrono::steady_clock::time_point start)
      LYRIC_EXCLUDES(mu_);
  /// Grants queued waiters in priority order while slots and ledger
  /// headroom last.
  void GrantWaitersLocked() LYRIC_REQUIRES(mu_);
  /// True when a grant made now should be degraded to serial execution.
  bool UnderPressureLocked() const LYRIC_REQUIRES(mu_);
  /// Builds the typed shed status with the retry-after hint.
  Status ShedLocked(const char* why) LYRIC_REQUIRES(mu_);
  uint64_t RetryAfterHintLocked() const LYRIC_REQUIRES(mu_);
  /// Mirrors live state into the "scheduler.*" gauges (Global() instance
  /// only, so per-test schedulers don't clobber the process numbers).
  /// The gauge handles are function-local statics: the registry lock
  /// (rank kObsRegistry) nests legally under mu_ (rank kScheduler) on
  /// first resolution, and subsequent Sets are plain atomic stores.
  void PublishGaugesLocked() const LYRIC_REQUIRES(mu_);

  mutable sync::Mutex mu_{sync::LockRank::kScheduler, "scheduler"};
  mutable sync::CondVar cv_;
  SchedulerLimits limits_ LYRIC_GUARDED_BY(mu_);
  std::list<Waiter> waiters_ LYRIC_GUARDED_BY(mu_);
  uint64_t next_seq_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t active_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t reserved_memory_ LYRIC_GUARDED_BY(mu_) = 0;
  // Lifetime counters (mirrored into the obs registry as scheduler.*).
  uint64_t admitted_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t queued_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t shed_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t degraded_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t expired_ LYRIC_GUARDED_BY(mu_) = 0;
  uint64_t peak_active_ LYRIC_GUARDED_BY(mu_) = 0;
  /// EWMA of completed-query durations in ms; feeds the retry-after hint.
  double avg_duration_ms_ LYRIC_GUARDED_BY(mu_) = 0;
  bool has_avg_ LYRIC_GUARDED_BY(mu_) = false;
};

// -- Retry policy ----------------------------------------------------------

/// Deterministic capped-exponential-backoff retry for transient failures.
///
/// Transient means kUnavailable — the one code the system reserves for
/// "nothing happened, try again": admission sheds and injected transport
/// faults. kDeadlineExceeded and kResourceExhausted are NEVER retried:
/// a deadline partial already consumed its budget and a bigger answer
/// won't appear by asking again.
///
/// Backoff for retry attempt k (0-based) is base*2^k capped at max, with
/// deterministic seeded jitter in [cap/2, cap] (splitmix64 over
/// (seed, k)), raised to any retry-after hint the Status carries.
struct RetryPolicy {
  uint32_t max_retries = 0;  ///< 0 = never retry (the default).
  uint64_t base_backoff_ms = 10;
  uint64_t max_backoff_ms = 1000;
  uint64_t seed = 0;

  /// The process default from LYRIC_RETRY=retries[:base_ms[:seed]], read
  /// once. Unset leaves max_retries at 0 (retry disabled).
  static const RetryPolicy& FromEnv();

  /// Whether `failed` should be retried after `attempt` completed retries.
  bool ShouldRetry(const Status& failed, uint32_t attempt) const;
  /// The deterministic backoff before retry `attempt`; honors `failed`'s
  /// retry-after hint as a lower bound.
  uint64_t BackoffMs(uint32_t attempt, const Status& failed) const;
};

/// Runs `op` under `policy`: on a transient failure sleeps the backoff
/// and retries, up to policy.max_retries times. Returns the first
/// success or the last failure. Increments obs counter
/// "scheduler.retries" per retry. Used by the shell (.load/.save) and
/// lyric_check; the evaluator has its own inline loop so it can preserve
/// the Result<ResultSet> payload.
Status RunWithRetry(const RetryPolicy& policy, const std::function<Status()>& op);

}  // namespace exec
}  // namespace lyric

#endif  // LYRIC_EXEC_SCHEDULER_H_
