#include "exec/thread_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  LYRIC_OBS_COUNT_N("exec.pool_threads_spawned", num_threads);
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Simulated scheduling failure: degrade to inline execution on the
  // caller. Correctness is unaffected — chunk tasks are independent and
  // the latch still counts down — only parallelism is lost.
  if (fault::Enabled() && fault::Inject(fault::kSiteThreadPool)) {
    LYRIC_OBS_COUNT("exec.tasks_inline_degraded");
    task();
    return;
  }
  {
    sync::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  LYRIC_OBS_COUNT("exec.tasks_submitted");
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) cv_.Wait(mu_);
      // Drain before exiting so every submitted task runs (chunk results
      // the merge is waiting on must materialize even during shutdown).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ChunkLatch::Done(size_t chunk_index) {
  {
    sync::MutexLock lock(mu_);
    if (chunk_index < done_bits_.size() && !done_bits_[chunk_index]) {
      done_bits_[chunk_index] = true;
      ++completed_;
    }
  }
  cv_.NotifyAll();
}

void ChunkLatch::WaitFor(size_t chunk_index) {
  sync::MutexLock lock(mu_);
  while (chunk_index < done_bits_.size() && !done_bits_[chunk_index]) {
    cv_.Wait(mu_);
  }
}

void ChunkLatch::WaitAll() {
  sync::MutexLock lock(mu_);
  while (completed_ != total_) cv_.Wait(mu_);
}

}  // namespace exec
}  // namespace lyric
