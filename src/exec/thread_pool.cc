#include "exec/thread_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "util/fault.h"

namespace lyric {
namespace exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  LYRIC_OBS_COUNT_N("exec.pool_threads_spawned", num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  // Simulated scheduling failure: degrade to inline execution on the
  // caller. Correctness is unaffected — chunk tasks are independent and
  // the latch still counts down — only parallelism is lost.
  if (fault::Enabled() && fault::Inject(fault::kSiteThreadPool)) {
    LYRIC_OBS_COUNT("exec.tasks_inline_degraded");
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  LYRIC_OBS_COUNT("exec.tasks_submitted");
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain before exiting so every submitted task runs (chunk results
      // the merge is waiting on must materialize even during shutdown).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ChunkLatch::Done(size_t chunk_index) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (chunk_index < done_bits_.size() && !done_bits_[chunk_index]) {
      done_bits_[chunk_index] = true;
      ++completed_;
    }
  }
  cv_.notify_all();
}

void ChunkLatch::WaitFor(size_t chunk_index) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this, chunk_index] {
    return chunk_index >= done_bits_.size() || done_bits_[chunk_index];
  });
}

void ChunkLatch::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return completed_ == total_; });
}

}  // namespace exec
}  // namespace lyric
