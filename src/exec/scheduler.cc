#include "exec/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace lyric {
namespace exec {

namespace {

std::optional<uint64_t> EnvUint64(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(value);
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Fallback completed-query duration before any query has finished.
constexpr double kDefaultAvgDurationMs = 50.0;
constexpr uint64_t kMaxRetryAfterMs = 60'000;

}  // namespace

const SchedulerLimits& SchedulerLimits::FromEnv() {
  static const SchedulerLimits* limits = [] {
    auto* env = new SchedulerLimits();
    env->max_concurrent = EnvUint64("LYRIC_MAX_CONCURRENT");
    env->queue_capacity = EnvUint64("LYRIC_QUEUE_CAPACITY");
    env->queue_timeout_ms = EnvUint64("LYRIC_QUEUE_TIMEOUT_MS");
    env->max_total_memory = EnvUint64("LYRIC_MAX_TOTAL_MEMORY");
    return env;
  }();
  return *limits;
}

std::string SchedulerStats::ToString() const {
  std::string out = "scheduler: active=";
  out += std::to_string(active);
  out += "/peak=";
  out += std::to_string(peak_active);
  out += " waiting=";
  out += std::to_string(waiting);
  out += " reserved=";
  out += std::to_string(reserved_memory);
  out += "B | admitted=";
  out += std::to_string(admitted);
  out += " queued=";
  out += std::to_string(queued);
  out += " degraded=";
  out += std::to_string(degraded);
  out += " shed=";
  out += std::to_string(shed);
  out += " (expired=";
  out += std::to_string(expired);
  out += ")";
  return out;
}

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    Release();
    scheduler_ = other.scheduler_;
    memory_ = other.memory_;
    degraded_ = other.degraded_;
    queue_wait_ns_ = other.queue_wait_ns_;
    start_ = other.start_;
    other.scheduler_ = nullptr;
  }
  return *this;
}

void AdmissionTicket::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->Release(memory_, start_);
    scheduler_ = nullptr;
  }
}

QueryScheduler& QueryScheduler::Global() {
  static QueryScheduler* instance =
      new QueryScheduler(SchedulerLimits::FromEnv());
  return *instance;
}

void QueryScheduler::Configure(const SchedulerLimits& limits) {
  sync::MutexLock lock(mu_);
  limits_ = limits;
  // Relaxed limits may unblock queued waiters immediately.
  GrantWaitersLocked();
}

SchedulerLimits QueryScheduler::limits() const {
  sync::MutexLock lock(mu_);
  return limits_;
}

void QueryScheduler::PublishGaugesLocked() const {
  static const QueryScheduler* global = &Global();
  if (this != global) return;
  obs::Registry& reg = obs::Registry::Global();
  static obs::Gauge& active_gauge = reg.GetGauge("scheduler.active");
  static obs::Gauge& waiting_gauge = reg.GetGauge("scheduler.waiting");
  static obs::Gauge& reserved_gauge =
      reg.GetGauge("scheduler.reserved_memory_bytes");
  uint64_t waiting = 0;
  for (const Waiter& w : waiters_) {
    if (!w.granted) ++waiting;
  }
  active_gauge.Set(static_cast<int64_t>(active_));
  waiting_gauge.Set(static_cast<int64_t>(waiting));
  reserved_gauge.Set(static_cast<int64_t>(reserved_memory_));
}

bool QueryScheduler::UnderPressureLocked() const {
  for (const Waiter& w : waiters_) {
    if (!w.granted) return true;
  }
  return limits_.max_total_memory.has_value() &&
         reserved_memory_ > *limits_.max_total_memory / 2;
}

uint64_t QueryScheduler::RetryAfterHintLocked() const {
  uint64_t waiting = 0;
  for (const Waiter& w : waiters_) {
    if (!w.granted) ++waiting;
  }
  const double avg = has_avg_ ? avg_duration_ms_ : kDefaultAvgDurationMs;
  const uint64_t lanes = std::max<uint64_t>(limits_.max_concurrent.value_or(1), 1);
  const double hint = (static_cast<double>(waiting) + 1.0) * avg /
                      static_cast<double>(lanes);
  return std::clamp<uint64_t>(static_cast<uint64_t>(hint), 1, kMaxRetryAfterMs);
}

Status QueryScheduler::ShedLocked(const char* why) {
  ++shed_;
  LYRIC_OBS_COUNT("scheduler.shed");
  std::string msg = "admission: ";
  msg += why;
  return Status::Unavailable(std::move(msg))
      .WithRetryAfter(RetryAfterHintLocked());
}

void QueryScheduler::GrantWaitersLocked() {
  bool granted_any = false;
  for (;;) {
    if (limits_.max_concurrent.has_value() &&
        active_ >= *limits_.max_concurrent) {
      break;
    }
    // Best ungranted waiter: earliest declared deadline first, FIFO
    // (arrival seq) among equal deadlines; no-deadline waiters sort last.
    Waiter* best = nullptr;
    for (Waiter& w : waiters_) {
      if (w.granted) continue;
      if (best == nullptr) {
        best = &w;
        continue;
      }
      const bool earlier =
          w.has_deadline &&
          (!best->has_deadline || w.deadline_at < best->deadline_at ||
           (w.deadline_at == best->deadline_at && w.seq < best->seq));
      const bool fifo = !w.has_deadline && !best->has_deadline &&
                        w.seq < best->seq;
      if (earlier || fifo) best = &w;
    }
    if (best == nullptr) break;
    // Strict priority order: if the best waiter's budget does not fit the
    // ledger, later (cheaper) waiters do NOT jump the queue.
    if (limits_.max_total_memory.has_value() &&
        reserved_memory_ + best->memory > *limits_.max_total_memory) {
      break;
    }
    best->granted = true;
    // A grant made off the queue happened under contention by definition:
    // downgrade to serial execution so slots drain faster.
    best->degraded = true;
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    reserved_memory_ += best->memory;
    ++admitted_;
    ++degraded_;
    LYRIC_OBS_COUNT("scheduler.admitted");
    LYRIC_OBS_COUNT("scheduler.degraded");
    granted_any = true;
  }
  // Grants can originate from Release, Configure, or a newly queued
  // arrival; the granted waiters sleep on cv_ either way, so the grant
  // site itself wakes them (notify-under-lock is well-defined).
  if (granted_any) cv_.NotifyAll();
}

Result<AdmissionTicket> QueryScheduler::Admit(const AdmissionRequest& request) {
  const auto now = std::chrono::steady_clock::now();
  sync::MutexLock lock(mu_);

  // The fault site simulates a full queue regardless of actual load, so
  // the shed + retry path is testable without generating real pressure.
  const bool forced_shed =
      fault::Enabled() && fault::Inject(fault::kSiteScheduler);

  if (limits_.max_total_memory.has_value() &&
      request.memory_budget > *limits_.max_total_memory) {
    // Could never be admitted no matter how long it waits — a permanent,
    // non-retryable rejection (deliberately NOT kUnavailable).
    return Status::ResourceExhausted(
        "admission: declared memory budget exceeds the process ledger");
  }

  const bool slot_free = !limits_.max_concurrent.has_value() ||
                         active_ < *limits_.max_concurrent;
  const bool memory_fits =
      !limits_.max_total_memory.has_value() ||
      reserved_memory_ + request.memory_budget <= *limits_.max_total_memory;

  if (!forced_shed && slot_free && memory_fits && waiters_.empty()) {
    const bool degraded = UnderPressureLocked();
    ++active_;
    peak_active_ = std::max(peak_active_, active_);
    reserved_memory_ += request.memory_budget;
    ++admitted_;
    LYRIC_OBS_COUNT("scheduler.admitted");
    if (degraded) {
      ++degraded_;
      LYRIC_OBS_COUNT("scheduler.degraded");
    }
    // A direct grant waited zero time; recording it keeps the queue-wait
    // percentiles honest (p50 over all admissions, not just queued ones).
    LYRIC_OBS_RECORD("scheduler.queue_wait", 0);
    PublishGaugesLocked();
    AdmissionTicket ticket(this, request.memory_budget, degraded);
    ticket.start_ = now;
    return ticket;
  }

  // No slot (or arrivals already queued): queue or shed.
  uint64_t waiting = 0;
  for (const Waiter& w : waiters_) {
    if (!w.granted) ++waiting;
  }
  const uint64_t queue_cap = limits_.queue_capacity.value_or(
      SchedulerLimits::kDefaultQueueCapacity);
  if (forced_shed) return ShedLocked("injected fault: queue full");
  if (waiting >= queue_cap) return ShedLocked("queue full");

  waiters_.emplace_back();
  auto it = std::prev(waiters_.end());
  it->seq = next_seq_++;
  it->memory = request.memory_budget;
  if (request.deadline_ms.has_value()) {
    it->has_deadline = true;
    it->deadline_at = now + std::chrono::milliseconds(*request.deadline_ms);
  }
  ++queued_;
  LYRIC_OBS_COUNT("scheduler.queued");
  PublishGaugesLocked();

  // The wait bound: the query's own declared deadline and/or the queue
  // timeout, whichever comes first. Neither -> wait until granted.
  std::optional<std::chrono::steady_clock::time_point> expires_at;
  if (it->has_deadline) expires_at = it->deadline_at;
  if (limits_.queue_timeout_ms.has_value()) {
    auto timeout_at = now + std::chrono::milliseconds(*limits_.queue_timeout_ms);
    if (!expires_at.has_value() || timeout_at < *expires_at) {
      expires_at = timeout_at;
    }
  }

  {
    obs::Span span("admission.queue_wait");
    // A freshly queued arrival may be immediately grantable (e.g. the
    // direct path was skipped only because older waiters exist).
    GrantWaitersLocked();
    while (!it->granted) {
      if (expires_at.has_value()) {
        if (cv_.WaitUntil(mu_, *expires_at) && !it->granted) {
          const bool own_deadline =
              it->has_deadline &&
              std::chrono::steady_clock::now() >= it->deadline_at;
          waiters_.erase(it);
          ++expired_;
          LYRIC_OBS_COUNT("scheduler.expired");
          PublishGaugesLocked();
          return ShedLocked(own_deadline
                                ? "declared deadline expired while queued"
                                : "queue wait timed out");
        }
      } else {
        cv_.Wait(mu_);
      }
    }
  }

  AdmissionTicket ticket(this, it->memory, it->degraded);
  ticket.start_ = now;
  ticket.queue_wait_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - now)
          .count());
  LYRIC_OBS_RECORD("scheduler.queue_wait", ticket.queue_wait_ns_);
  waiters_.erase(it);
  PublishGaugesLocked();
  return ticket;
}

void QueryScheduler::Release(uint64_t memory,
                             std::chrono::steady_clock::time_point start) {
  sync::MutexLock lock(mu_);
  if (active_ > 0) --active_;
  reserved_memory_ -= std::min(reserved_memory_, memory);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  // EWMA of completed-query durations drives the retry-after hint.
  avg_duration_ms_ =
      has_avg_ ? 0.8 * avg_duration_ms_ + 0.2 * elapsed_ms : elapsed_ms;
  has_avg_ = true;
  GrantWaitersLocked();
  PublishGaugesLocked();
}

SchedulerStats QueryScheduler::stats() const {
  sync::MutexLock lock(mu_);
  SchedulerStats out;
  out.admitted = admitted_;
  out.queued = queued_;
  out.shed = shed_;
  out.degraded = degraded_;
  out.expired = expired_;
  out.active = active_;
  for (const Waiter& w : waiters_) {
    if (!w.granted) ++out.waiting;
  }
  out.peak_active = peak_active_;
  out.reserved_memory = reserved_memory_;
  return out;
}

bool QueryScheduler::WaitForWaiters(uint64_t count, uint64_t timeout_ms) const {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  for (;;) {
    {
      sync::MutexLock lock(mu_);
      uint64_t waiting = 0;
      for (const Waiter& w : waiters_) {
        if (!w.granted) ++waiting;
      }
      if (waiting >= count) return true;
    }
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// -- Retry policy ----------------------------------------------------------

const RetryPolicy& RetryPolicy::FromEnv() {
  static const RetryPolicy* policy = [] {
    auto* env = new RetryPolicy();
    const char* text = std::getenv("LYRIC_RETRY");
    if (text != nullptr && *text != '\0') {
      // retries[:base_ms[:seed]]
      char* end = nullptr;
      unsigned long long retries = std::strtoull(text, &end, 10);
      if (end != text) {
        env->max_retries = static_cast<uint32_t>(retries);
        if (*end == ':') {
          const char* base_text = end + 1;
          unsigned long long base = std::strtoull(base_text, &end, 10);
          if (end != base_text && base > 0) {
            env->base_backoff_ms = static_cast<uint64_t>(base);
          }
          if (*end == ':') {
            const char* seed_text = end + 1;
            unsigned long long seed = std::strtoull(seed_text, &end, 10);
            if (end != seed_text) env->seed = static_cast<uint64_t>(seed);
          }
        }
      }
    }
    return env;
  }();
  return *policy;
}

bool RetryPolicy::ShouldRetry(const Status& failed, uint32_t attempt) const {
  if (attempt >= max_retries) return false;
  // Transient == kUnavailable, by construction: admission sheds and
  // injected transport faults carry it; deadline/budget partials never do.
  return failed.IsUnavailable();
}

uint64_t RetryPolicy::BackoffMs(uint32_t attempt, const Status& failed) const {
  uint64_t cap = base_backoff_ms;
  for (uint32_t i = 0; i < attempt && cap < max_backoff_ms; ++i) cap *= 2;
  cap = std::min(cap, max_backoff_ms);
  // Deterministic seeded jitter in [cap/2, cap].
  const uint64_t jitter =
      SplitMix64(seed * 0x2545f4914f6cdd1dull + attempt) % (cap / 2 + 1);
  uint64_t backoff = cap - cap / 2 + jitter;
  backoff = std::max<uint64_t>(backoff, failed.retry_after_ms());
  return std::max<uint64_t>(backoff, 1);
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op) {
  uint32_t attempt = 0;
  for (;;) {
    Status status = op();
    if (status.ok() || !policy.ShouldRetry(status, attempt)) return status;
    LYRIC_OBS_COUNT("scheduler.retries");
    std::this_thread::sleep_for(
        std::chrono::milliseconds(policy.BackoffMs(attempt, status)));
    ++attempt;
  }
}

}  // namespace exec
}  // namespace lyric
