// Annotated synchronization primitives: the one place in the codebase
// that is allowed to touch std::mutex.
//
// Every shared-state subsystem (scheduler ledger, thread-pool queue,
// solver-cache shards, obs registry, query-log ring, trace lanes, CST
// store, variable interner, fault config) locks through the wrappers
// below, for two machine-checked guarantees:
//
//  1. Compile-time lock discipline. The wrappers carry Clang Thread
//     Safety capability attributes, so fields declared
//     LYRIC_GUARDED_BY(mu_) and helpers declared LYRIC_REQUIRES(mu_)
//     turn a wrong-lock access into a build error under
//     -Wthread-safety (the CI thread-safety job builds with
//     -Werror=thread-safety-analysis). Under non-Clang compilers the
//     attributes expand to nothing.
//
//  2. Runtime lock-order checking. Every Mutex carries a LockRank from
//     the documented hierarchy (docs/CONCURRENCY.md); a debug/CI build
//     maintains a thread-local held-lock stack and aborts — with the
//     two offending locks named — the moment a thread acquires a lock
//     whose rank is not strictly greater than everything it already
//     holds. Inversions become deterministic aborts in any test that
//     executes the path once, instead of deadlocks that need two
//     unlucky threads under load. Recursive acquisition of the same
//     lock (UB for std::mutex) aborts the same way.
//
// The companion lint gate (tools/check_lock_discipline, run as a ctest
// and a CI step) rejects raw std::mutex / std::lock_guard /
// std::unique_lock / naked .lock() anywhere outside this header, so the
// two guarantees cannot be bypassed by accident.
//
// The rank checker is compiled in when LYRIC_SYNC_RANK_CHECK is defined
// — the build system defines it globally (option LYRIC_RANK_CHECK,
// default ON) so every translation unit agrees; per-TU toggling would
// be an ODR hazard. The cost is one TLS access plus a scan of the
// (nearly always <4 deep) held-lock stack per acquisition.

#ifndef LYRIC_UTIL_SYNC_H_
#define LYRIC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

// -- Clang Thread Safety annotation macros ---------------------------------
//
// Usage conventions (see docs/CONCURRENCY.md for the full recipe):
//   * every field touched by more than one thread: LYRIC_GUARDED_BY(mu_)
//   * every private *Locked() helper: LYRIC_REQUIRES(mu_)
//   * public entry points that take the lock: LYRIC_EXCLUDES(mu_)
//   * condition-variable waits: explicit `while (!cond) cv_.Wait(mu_);`
//     loops, never predicate lambdas (the analysis is intraprocedural
//     and cannot see a lambda's calling context).

#if defined(__clang__)
#define LYRIC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LYRIC_THREAD_ANNOTATION_(x)  // no-op under GCC/MSVC
#endif

#define LYRIC_CAPABILITY(x) LYRIC_THREAD_ANNOTATION_(capability(x))
#define LYRIC_SCOPED_CAPABILITY LYRIC_THREAD_ANNOTATION_(scoped_lockable)
#define LYRIC_GUARDED_BY(x) LYRIC_THREAD_ANNOTATION_(guarded_by(x))
#define LYRIC_PT_GUARDED_BY(x) LYRIC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define LYRIC_ACQUIRED_BEFORE(...) \
  LYRIC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define LYRIC_ACQUIRED_AFTER(...) \
  LYRIC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define LYRIC_REQUIRES(...) \
  LYRIC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LYRIC_REQUIRES_SHARED(...) \
  LYRIC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define LYRIC_ACQUIRE(...) \
  LYRIC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LYRIC_ACQUIRE_SHARED(...) \
  LYRIC_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define LYRIC_RELEASE(...) \
  LYRIC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define LYRIC_RELEASE_SHARED(...) \
  LYRIC_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define LYRIC_RELEASE_GENERIC(...) \
  LYRIC_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define LYRIC_TRY_ACQUIRE(...) \
  LYRIC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define LYRIC_EXCLUDES(...) LYRIC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define LYRIC_ASSERT_CAPABILITY(x) \
  LYRIC_THREAD_ANNOTATION_(assert_capability(x))
#define LYRIC_RETURN_CAPABILITY(x) LYRIC_THREAD_ANNOTATION_(lock_returned(x))
#define LYRIC_NO_THREAD_SAFETY_ANALYSIS \
  LYRIC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace lyric {
namespace sync {

/// The process lock hierarchy (docs/CONCURRENCY.md). A thread may only
/// acquire a lock whose rank is STRICTLY GREATER than every ranked lock
/// it already holds; the runtime checker aborts otherwise. Gaps between
/// values leave room for future subsystems without renumbering.
enum class LockRank : int {
  /// Excluded from order checking (tests, short-lived local locks).
  /// Recursive-acquisition detection still applies.
  kUnranked = 0,
  /// lyric_serverd session registry (net/server.h). First: the accept
  /// loop registers/reaps sessions and publishes connection gauges, but
  /// never holds this lock across query evaluation.
  kNetSession = 4,
  /// lyric_serverd schema gate (net/server.h): shared for read queries,
  /// exclusive for CREATE VIEW. Held across a whole evaluation, so it
  /// must rank before every lock evaluation can take (scheduler first).
  kNetSchemaGate = 6,
  /// lyric_serverd lifecycle state (net/server.h): in-flight query
  /// count, drain condvar, degraded-mode cause. Above the schema gate
  /// because a failed store write-through degrades the server to
  /// read-only while still holding the exclusive gate.
  kNetLifecycle = 8,
  /// QueryScheduler admission ledger + wait queue (exec/scheduler.h).
  kScheduler = 10,
  /// ThreadPool task queue (exec/thread_pool.h).
  kThreadPool = 20,
  /// ChunkLatch completion bits (exec/thread_pool.h).
  kChunkLatch = 22,
  /// PagedStore engine lock (storage/paged_store.h): serializes B-tree
  /// structure changes and batch application. Held across buffer-pool
  /// fetches and WAL appends, so it ranks before both.
  kStorageEngine = 24,
  /// WAL append/group-commit state (storage/wal.h).
  kWal = 26,
  /// Buffer-pool frame table + LRU list (storage/buffer_pool.h).
  kBufferPool = 28,
  /// Database CST interning store (object/database.h).
  kCstStore = 30,
  /// SolverCache per-shard LRU + index (constraint/solver_cache.h).
  /// Only one shard lock is ever held at a time (shards never nest).
  kCacheShard = 35,
  /// CancellationToken trip-site string (exec/governor.h). Ranked after
  /// the cache shard: tombstone hits call ForceTrip under the shard
  /// lock.
  kGovernor = 40,
  /// obs::Registry metric maps (obs/metrics.h). Ranked after every
  /// subsystem lock so counters/gauges may be resolved under them, and
  /// before the sinks.
  kObsRegistry = 50,
  /// QueryLog ring + JSONL sink (obs/query_log.h). Gauge handles must
  /// be resolved BEFORE taking this lock (registry ranks first).
  kQueryLog = 60,
  /// TraceCollector worker-lane registration (obs/trace.h).
  kTraceLanes = 70,
  /// Variable interner (constraint/variable.cc). Near-leaf: any
  /// subsystem may intern or resolve a name under its own lock.
  kVarInterner = 80,
  /// Fault-injection site table (util/fault.cc). Leaf.
  kFaultConfig = 90,
};

namespace internal {

/// One acquired lock on the current thread's stack.
struct HeldLock {
  const void* lock = nullptr;
  int rank = 0;
  const char* name = nullptr;
};

/// Fixed-capacity held-lock stack; depth beyond kMaxDepth aborts (no
/// sane path holds 32 locks).
struct HeldLockStack {
  static constexpr int kMaxDepth = 32;
  HeldLock entries[kMaxDepth];
  int depth = 0;
};

inline HeldLockStack& TlsHeldLocks() {
  thread_local HeldLockStack stack;
  return stack;
}

[[noreturn]] inline void RankAbort(const char* what, const char* acquiring,
                                   int acquiring_rank, const char* held,
                                   int held_rank) {
  std::fprintf(stderr,
               "lyric/sync: %s: acquiring '%s' (rank %d) while holding "
               "'%s' (rank %d)\n",
               what, acquiring, acquiring_rank, held, held_rank);
  std::fflush(stderr);
  std::abort();
}

/// Pre-acquisition check: aborts on recursive acquisition of `lock` or
/// on a rank inversion against any held ranked lock.
inline void CheckAcquire(const void* lock, int rank, const char* name) {
  HeldLockStack& stack = TlsHeldLocks();
  for (int i = 0; i < stack.depth; ++i) {
    const HeldLock& held = stack.entries[i];
    if (held.lock == lock) {
      RankAbort("recursive lock acquisition", name, rank, held.name,
                held.rank);
    }
    if (rank != 0 && held.rank != 0 && held.rank >= rank) {
      RankAbort("lock-order inversion", name, rank, held.name, held.rank);
    }
  }
}

inline void NoteAcquired(const void* lock, int rank, const char* name) {
  HeldLockStack& stack = TlsHeldLocks();
  if (stack.depth >= HeldLockStack::kMaxDepth) {
    std::fprintf(stderr, "lyric/sync: held-lock stack overflow at '%s'\n",
                 name);
    std::fflush(stderr);
    std::abort();
  }
  stack.entries[stack.depth++] = HeldLock{lock, rank, name};
}

inline void NoteReleased(const void* lock) {
  HeldLockStack& stack = TlsHeldLocks();
  // Search from the top: releases are almost always LIFO, but
  // out-of-order release (manual Unlock) is legal.
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.entries[i].lock == lock) {
      for (int j = i; j + 1 < stack.depth; ++j) {
        stack.entries[j] = stack.entries[j + 1];
      }
      --stack.depth;
      return;
    }
  }
}

inline bool IsHeld(const void* lock) {
  const HeldLockStack& stack = TlsHeldLocks();
  for (int i = 0; i < stack.depth; ++i) {
    if (stack.entries[i].lock == lock) return true;
  }
  return false;
}

}  // namespace internal

/// A standard exclusive mutex carrying a thread-safety capability and a
/// lock-hierarchy rank. Non-copyable, non-movable (guarded fields refer
/// to it by address).
class LYRIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = "mutex")
      : rank_(static_cast<int>(rank)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LYRIC_ACQUIRE() {
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::CheckAcquire(this, rank_, name_);
#endif
    mu_.lock();
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteAcquired(this, rank_, name_);
#endif
  }

  void Unlock() LYRIC_RELEASE() {
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteReleased(this);
#endif
    mu_.unlock();
  }

  bool TryLock() LYRIC_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteAcquired(this, rank_, name_);
#endif
    return true;
  }

  /// Debug assertion that the calling thread holds this mutex; tells
  /// the static analysis the capability is held either way. No-op when
  /// the rank checker is compiled out.
  void AssertHeld() const LYRIC_ASSERT_CAPABILITY(this) {
#ifdef LYRIC_SYNC_RANK_CHECK
    if (!internal::IsHeld(this)) {
      std::fprintf(stderr, "lyric/sync: AssertHeld failed on '%s'\n", name_);
      std::fflush(stderr);
      std::abort();
    }
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  // Present unconditionally so layout never depends on the checker
  // macro (mixing checked and unchecked TUs must stay ABI-safe).
  int rank_ = 0;
  const char* name_ = "mutex";
};

/// A reader/writer mutex with the same capability + rank treatment.
class LYRIC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name = "shared_mutex")
      : rank_(static_cast<int>(rank)), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LYRIC_ACQUIRE() {
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::CheckAcquire(this, rank_, name_);
#endif
    mu_.lock();
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteAcquired(this, rank_, name_);
#endif
  }

  void Unlock() LYRIC_RELEASE() {
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteReleased(this);
#endif
    mu_.unlock();
  }

  void LockShared() LYRIC_ACQUIRE_SHARED() {
#ifdef LYRIC_SYNC_RANK_CHECK
    // Shared re-acquisition on the same thread can still deadlock
    // against a queued writer, so it participates in the same checks.
    internal::CheckAcquire(this, rank_, name_);
#endif
    mu_.lock_shared();
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteAcquired(this, rank_, name_);
#endif
  }

  void UnlockShared() LYRIC_RELEASE_SHARED() {
#ifdef LYRIC_SYNC_RANK_CHECK
    internal::NoteReleased(this);
#endif
    mu_.unlock_shared();
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  int rank_ = 0;
  const char* name_ = "shared_mutex";
};

/// RAII exclusive lock over a Mutex.
class LYRIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LYRIC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LYRIC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex.
class LYRIC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) LYRIC_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() LYRIC_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class LYRIC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) LYRIC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() LYRIC_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// A condition variable bound to sync::Mutex. Waits take the Mutex
/// directly and are annotated LYRIC_REQUIRES(mu), so the analysis knows
/// the lock is held across the wait. Callers write explicit condition
/// loops:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// (never the predicate-lambda overloads of std::condition_variable —
/// the analysis cannot see a lambda's calling context, so guarded-field
/// access inside one would warn).
///
/// The held-lock stack deliberately keeps the mutex entry during a wait:
/// the wait re-acquires before returning, so the lock is held at every
/// point the caller can observe.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  void Wait(Mutex& mu) LYRIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // Ownership stays with the caller's scope.
  }

  /// Waits until notified or `deadline`. Returns true when the wait
  /// timed out (the caller must re-test its condition either way).
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      LYRIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(inner, deadline);
    inner.release();
    return status == std::cv_status::timeout;
  }

  /// Waits until notified or `timeout` elapses. Returns true on timeout.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      LYRIC_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sync
}  // namespace lyric

#endif  // LYRIC_UTIL_SYNC_H_
