#include "util/string_util.h"

#include <cctype>

namespace lyric {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace lyric
