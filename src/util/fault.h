// Deterministic fault injection for robustness testing.
//
// Production code marks recoverable failure points with fault::Inject:
//
//   if (fault::Inject(fault::kSite_SolverCache)) return std::nullopt;
//
// In normal operation every call is a single relaxed atomic load (the
// injector is disabled) — the sites cost nothing on hot paths. Tests and
// the fault-injection ctest gate enable sites via the LYRIC_FAULT
// environment variable or ConfigureForTesting:
//
//   LYRIC_FAULT=<site>:<prob>[:<seed>][,<site>:<prob>[:<seed>]...]
//   LYRIC_FAULT=solver_cache:0.25:42,serializer:1.0
//
// Decisions are deterministic given (site, seed, call index): each site
// keeps an atomic call counter and hashes (seed, index) through
// splitmix64, so a run with one thread replays identically and a
// multi-threaded run injects the same *set* of decisions regardless of
// interleaving. Injections are counted in the obs metrics registry as
// "fault.injected.<site>".
//
// Sites (see docs/ROBUSTNESS.md for the failure each one simulates):
//   solver_cache  lookups miss / stores drop (recompute paths)
//   serializer    load/save fail with an injected Status
//   thread_pool   Submit degrades to inline execution on the caller
//   alloc         kernel memory accounting trips the governor budget
//   shell         lyric_shell statement loop throws (exception hardening)
//   merge         a parallel chunk's results are lost at the ordered merge;
//                 the merge thread recomputes the chunk inline
//   trace         a trace span fails to open and is dropped (observability
//                 loss only — query results unaffected)
//   scheduler     admission control sheds the arrival as if the wait queue
//                 were full (typed kUnavailable + retry-after hint)
//   net           lyric_serverd transport: accept/read/write calls fail
//                 with kUnavailable; the server drops the connection (the
//                 session is reaped, nothing leaks) and the client
//                 reconnects under its RetryPolicy
//   storage       paged-store I/O: page reads/writes, WAL appends and
//                 fsyncs fail with kUnavailable. Reads are plain typed
//                 errors; a failed commit poisons the store (fail-stop:
//                 further writes return typed errors) and reopening
//                 recovers exactly the last durably committed state

#ifndef LYRIC_UTIL_FAULT_H_
#define LYRIC_UTIL_FAULT_H_

#include <string>

namespace lyric {
namespace fault {

/// Canonical site names (shared by production sites and tests).
inline constexpr const char* kSiteSolverCache = "solver_cache";
inline constexpr const char* kSiteSerializer = "serializer";
inline constexpr const char* kSiteThreadPool = "thread_pool";
inline constexpr const char* kSiteAlloc = "alloc";
inline constexpr const char* kSiteShell = "shell";
inline constexpr const char* kSiteMerge = "merge";
inline constexpr const char* kSiteTrace = "trace";
inline constexpr const char* kSiteScheduler = "scheduler";
inline constexpr const char* kSiteNet = "net";
inline constexpr const char* kSiteStorage = "storage";

/// True when any site is armed (cheap: one relaxed atomic load). Callers
/// on hot paths may use this to skip building arguments.
bool Enabled();

/// Returns true when the named site should fail this call. Always false
/// when the injector is disabled or the site is not configured.
bool Inject(const char* site);

/// Replaces the configuration with `spec` (same grammar as LYRIC_FAULT;
/// empty disables everything). Resets per-site call counters. Tests only —
/// not safe concurrently with in-flight Inject calls on other threads.
/// Returns false (leaving the previous config) when `spec` is malformed.
bool ConfigureForTesting(const std::string& spec);

/// Loads the configuration from the LYRIC_FAULT environment variable.
/// Called lazily by the first Enabled()/Inject(); exposed for tools that
/// want the parse error reported eagerly.
void InitFromEnv();

}  // namespace fault
}  // namespace lyric

#endif  // LYRIC_UTIL_FAULT_H_
