// Small string helpers shared across the library.

#ifndef LYRIC_UTIL_STRING_UTIL_H_
#define LYRIC_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace lyric {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Lower-cases ASCII characters of `s`.
std::string ToLower(const std::string& s);

}  // namespace lyric

#endif  // LYRIC_UTIL_STRING_UTIL_H_
