// Result<T>: a value or a Status, following the Arrow idiom.

#ifndef LYRIC_UTIL_RESULT_H_
#define LYRIC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace lyric {

/// Holds either a successfully produced T or the Status explaining why the
/// value could not be produced. Construction from T is implicit so that
/// `return value;` works in functions returning Result<T>.
template <typename T>
class Result {
 public:
  /// Constructs a successful result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result; `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lyric

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, on success assigns the value to `lhs`.
#define LYRIC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define LYRIC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define LYRIC_ASSIGN_OR_RETURN_NAME(a, b) LYRIC_ASSIGN_OR_RETURN_CONCAT(a, b)

#define LYRIC_ASSIGN_OR_RETURN(lhs, expr) \
  LYRIC_ASSIGN_OR_RETURN_IMPL(            \
      LYRIC_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, expr)

#endif  // LYRIC_UTIL_RESULT_H_
