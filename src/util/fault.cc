#include "util/fault.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>  // std::call_once/std::once_flag only (allowed by the gate)
#include <vector>

#include "obs/metrics.h"
#include "util/sync.h"

namespace lyric {
namespace fault {

namespace {

struct Site {
  std::string name;
  /// Injection threshold in 2^-64 units: a call fires when the hashed
  /// (seed, index) value is below it. ~0 means probability 1.
  uint64_t threshold = 0;
  uint64_t seed = 0;
  std::atomic<uint64_t> calls{0};

  Site(std::string n, uint64_t t, uint64_t s)
      : name(std::move(n)), threshold(t), seed(s) {}
};

struct Config {
  sync::Mutex mu{sync::LockRank::kFaultConfig, "fault_config"};  // Leaf lock.
  // Stable addresses: Inject keeps a Site* after releasing mu (sites are
  // only ever replaced wholesale before injection begins).
  std::vector<std::unique_ptr<Site>> sites LYRIC_GUARDED_BY(mu);
  std::once_flag env_once;
};

Config& GlobalConfig() {
  static Config* config = new Config();
  return *config;
}

std::atomic<bool> g_enabled{false};
// Set once the configuration (env or test) has been applied; Enabled()
// keys its lazy init off this so the common `Enabled() && Inject(...)`
// call shape arms LYRIC_FAULT on first use instead of never.
std::atomic<bool> g_configured{false};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Parses "<site>:<prob>[:<seed>]" clauses separated by commas into
/// `out`; false on any malformed clause (out untouched in that case).
bool ParseSpec(const std::string& spec,
               std::vector<std::unique_ptr<Site>>* out) {
  std::vector<std::unique_ptr<Site>> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    size_t c1 = clause.find(':');
    if (c1 == std::string::npos || c1 == 0) return false;
    size_t c2 = clause.find(':', c1 + 1);
    const std::string name = clause.substr(0, c1);
    const std::string prob_text =
        clause.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                      : c2 - c1 - 1);
    char* parse_end = nullptr;
    double prob = std::strtod(prob_text.c_str(), &parse_end);
    if (parse_end == prob_text.c_str() || *parse_end != '\0' || prob < 0.0 ||
        prob > 1.0) {
      return false;
    }
    uint64_t seed = 0;
    if (c2 != std::string::npos) {
      const std::string seed_text = clause.substr(c2 + 1);
      parse_end = nullptr;
      seed = std::strtoull(seed_text.c_str(), &parse_end, 10);
      if (parse_end == seed_text.c_str() || *parse_end != '\0') return false;
    }
    uint64_t threshold =
        prob >= 1.0 ? ~uint64_t{0}
                    : static_cast<uint64_t>(
                          prob * 18446744073709551616.0 /* 2^64 */);
    parsed.push_back(std::make_unique<Site>(name, threshold, seed));
  }
  *out = std::move(parsed);
  return true;
}

void LoadEnvLocked(Config& config) LYRIC_REQUIRES(config.mu) {
  const char* env = std::getenv("LYRIC_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::vector<std::unique_ptr<Site>> sites;
  if (!ParseSpec(env, &sites)) return;  // Malformed spec: stay disabled.
  config.sites = std::move(sites);
  g_enabled.store(!config.sites.empty(), std::memory_order_relaxed);
}

}  // namespace

bool Enabled() {
  // Arm lazily from the environment on first use (sites call
  // `Enabled() && Inject(...)`, so this is the entry point that must
  // see LYRIC_FAULT). After the one-time init this is two relaxed loads.
  if (!g_configured.load(std::memory_order_acquire)) InitFromEnv();
  return g_enabled.load(std::memory_order_relaxed);
}

void InitFromEnv() {
  Config& config = GlobalConfig();
  std::call_once(config.env_once, [&config] {
    sync::MutexLock lock(config.mu);
    LoadEnvLocked(config);
  });
  g_configured.store(true, std::memory_order_release);
}

bool Inject(const char* site) {
  if (!Enabled()) return false;
  Config& config = GlobalConfig();
  Site* match = nullptr;
  {
    sync::MutexLock lock(config.mu);
    for (const auto& s : config.sites) {
      if (s->name == site) {
        match = s.get();
        break;
      }
    }
  }
  if (match == nullptr) return false;
  uint64_t index = match->calls.fetch_add(1, std::memory_order_relaxed);
  if (match->threshold == 0) return false;
  uint64_t draw = SplitMix64(match->seed * 0x2545f4914f6cdd1dull + index);
  if (match->threshold != ~uint64_t{0} && draw >= match->threshold) {
    return false;
  }
  {
    static obs::Counter& injected =
        obs::Registry::Global().GetCounter("fault.injected");
    injected.Increment();
  }
  obs::Registry::Global()
      .GetCounter(std::string("fault.injected.") + site)
      .Increment();
  return true;
}

bool ConfigureForTesting(const std::string& spec) {
  Config& config = GlobalConfig();
  // Ensure the env hook can no longer overwrite a test configuration.
  std::call_once(config.env_once, [] {});
  std::vector<std::unique_ptr<Site>> sites;
  if (!spec.empty() && !ParseSpec(spec, &sites)) return false;
  sync::MutexLock lock(config.mu);
  config.sites = std::move(sites);
  g_enabled.store(!config.sites.empty(), std::memory_order_relaxed);
  g_configured.store(true, std::memory_order_release);
  return true;
}

}  // namespace fault
}  // namespace lyric
