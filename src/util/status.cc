#include "util/status.h"

namespace lyric {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kTypeError:
      return "type-error";
    case StatusCode::kArithmeticError:
      return "arithmetic-error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDataLoss:
      return "data-loss";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace lyric
