// Status: the error-handling currency of the LyriC library.
//
// Following the Arrow/RocksDB idiom, no exception ever crosses a public API
// boundary. Every fallible operation returns a Status (or a Result<T>, see
// result.h), and callers propagate with LYRIC_RETURN_NOT_OK.

#ifndef LYRIC_UTIL_STATUS_H_
#define LYRIC_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace lyric {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  /// Caller passed an argument that violates the API contract.
  kInvalidArgument = 1,
  /// A named entity (class, attribute, object, variable) does not exist.
  kNotFound = 2,
  /// An entity being created already exists.
  kAlreadyExists = 3,
  /// The request is syntactically valid but not implemented.
  kNotImplemented = 4,
  /// Query text failed to lex or parse.
  kParseError = 5,
  /// Query is well-formed but violates the schema (type error, unknown
  /// attribute, arity mismatch, constraint-family violation).
  kTypeError = 6,
  /// Arithmetic failure (division by zero, malformed rational).
  kArithmeticError = 7,
  /// Internal invariant violated; indicates a library bug.
  kInternal = 8,
  /// A per-query wall-clock deadline expired before evaluation finished.
  kDeadlineExceeded = 9,
  /// A per-query resource budget (memory, simplex pivots, DNF disjuncts)
  /// was exhausted; the query was stopped to protect the process.
  kResourceExhausted = 10,
  /// The service is temporarily overloaded (admission queue full, transient
  /// injected fault). The operation was never started and is safe to retry;
  /// the status may carry a retry-after hint (see retry_after_ms()).
  kUnavailable = 11,
  /// Durable data failed validation (page checksum mismatch, torn write,
  /// corrupt WAL record beyond the recoverable tail). Retrying cannot
  /// help; the storage layer reports exactly what was lost and never
  /// silently repairs past committed state.
  kDataLoss = 12,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...).
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: OK, or a code plus a human-readable message.
///
/// Statuses are cheap to copy in the OK case (a single null pointer); error
/// details live behind a shared pointer.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ArithmeticError(std::string msg) {
    return Status(StatusCode::kArithmeticError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsArithmeticError() const {
    return code() == StatusCode::kArithmeticError;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  /// True for the two query-governor trip codes (the statuses a governed
  /// evaluation converts into a partial ResultSet instead of an error).
  bool IsGovernorTrip() const {
    return IsDeadlineExceeded() || IsResourceExhausted();
  }

  /// Returns a copy of this status annotated with a retry-after hint in
  /// milliseconds. Only meaningful on transient statuses (kUnavailable);
  /// consumers such as exec::RetryPolicy treat the hint as a lower bound
  /// on the backoff before the next attempt.
  Status WithRetryAfter(uint64_t retry_after_ms) const {
    if (ok()) return *this;
    Status out(code(), message());
    out.rep_ = std::make_shared<Rep>(Rep{code(), message(), retry_after_ms});
    return out;
  }
  /// The retry-after hint, or 0 when none was attached.
  uint64_t retry_after_ms() const { return rep_ ? rep_->retry_after_ms : 0; }

  /// "OK" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    uint64_t retry_after_ms = 0;
  };
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace lyric

/// Propagates a non-OK Status to the caller.
#define LYRIC_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::lyric::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // LYRIC_UTIL_STATUS_H_
