# Empty dependencies file for bench_flat_vs_direct.
# This may be replaced when dependencies are built.
