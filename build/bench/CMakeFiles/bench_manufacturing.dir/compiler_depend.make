# Empty compiler generated dependencies file for bench_manufacturing.
# This may be replaced when dependencies are built.
