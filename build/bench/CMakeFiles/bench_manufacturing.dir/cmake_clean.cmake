file(REMOVE_RECURSE
  "CMakeFiles/bench_manufacturing.dir/bench_manufacturing.cc.o"
  "CMakeFiles/bench_manufacturing.dir/bench_manufacturing.cc.o.d"
  "bench_manufacturing"
  "bench_manufacturing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_manufacturing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
