file(REMOVE_RECURSE
  "CMakeFiles/bench_mda.dir/bench_mda.cc.o"
  "CMakeFiles/bench_mda.dir/bench_mda.cc.o.d"
  "bench_mda"
  "bench_mda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
