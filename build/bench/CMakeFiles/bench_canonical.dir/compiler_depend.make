# Empty compiler generated dependencies file for bench_canonical.
# This may be replaced when dependencies are built.
