file(REMOVE_RECURSE
  "CMakeFiles/submarine_mda.dir/submarine_mda.cpp.o"
  "CMakeFiles/submarine_mda.dir/submarine_mda.cpp.o.d"
  "submarine_mda"
  "submarine_mda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/submarine_mda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
