# Empty compiler generated dependencies file for submarine_mda.
# This may be replaced when dependencies are built.
