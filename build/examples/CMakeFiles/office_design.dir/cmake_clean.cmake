file(REMOVE_RECURSE
  "CMakeFiles/office_design.dir/office_design.cpp.o"
  "CMakeFiles/office_design.dir/office_design.cpp.o.d"
  "office_design"
  "office_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
