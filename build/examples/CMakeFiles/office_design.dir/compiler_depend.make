# Empty compiler generated dependencies file for office_design.
# This may be replaced when dependencies are built.
