# Empty dependencies file for manufacturing_lp.
# This may be replaced when dependencies are built.
