file(REMOVE_RECURSE
  "CMakeFiles/manufacturing_lp.dir/manufacturing_lp.cpp.o"
  "CMakeFiles/manufacturing_lp.dir/manufacturing_lp.cpp.o.d"
  "manufacturing_lp"
  "manufacturing_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturing_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
