file(REMOVE_RECURSE
  "liblyric_util.a"
)
