# Empty compiler generated dependencies file for lyric_util.
# This may be replaced when dependencies are built.
