file(REMOVE_RECURSE
  "CMakeFiles/lyric_util.dir/status.cc.o"
  "CMakeFiles/lyric_util.dir/status.cc.o.d"
  "CMakeFiles/lyric_util.dir/string_util.cc.o"
  "CMakeFiles/lyric_util.dir/string_util.cc.o.d"
  "liblyric_util.a"
  "liblyric_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
