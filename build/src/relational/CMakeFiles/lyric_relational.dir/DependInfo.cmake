
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/flat_algebra.cc" "src/relational/CMakeFiles/lyric_relational.dir/flat_algebra.cc.o" "gcc" "src/relational/CMakeFiles/lyric_relational.dir/flat_algebra.cc.o.d"
  "/root/repo/src/relational/flat_relation.cc" "src/relational/CMakeFiles/lyric_relational.dir/flat_relation.cc.o" "gcc" "src/relational/CMakeFiles/lyric_relational.dir/flat_relation.cc.o.d"
  "/root/repo/src/relational/flatten.cc" "src/relational/CMakeFiles/lyric_relational.dir/flatten.cc.o" "gcc" "src/relational/CMakeFiles/lyric_relational.dir/flatten.cc.o.d"
  "/root/repo/src/relational/translator.cc" "src/relational/CMakeFiles/lyric_relational.dir/translator.cc.o" "gcc" "src/relational/CMakeFiles/lyric_relational.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/lyric_query.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/lyric_object.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/lyric_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/lyric_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lyric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
