file(REMOVE_RECURSE
  "liblyric_relational.a"
)
