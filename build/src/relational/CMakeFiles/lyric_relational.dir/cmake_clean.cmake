file(REMOVE_RECURSE
  "CMakeFiles/lyric_relational.dir/flat_algebra.cc.o"
  "CMakeFiles/lyric_relational.dir/flat_algebra.cc.o.d"
  "CMakeFiles/lyric_relational.dir/flat_relation.cc.o"
  "CMakeFiles/lyric_relational.dir/flat_relation.cc.o.d"
  "CMakeFiles/lyric_relational.dir/flatten.cc.o"
  "CMakeFiles/lyric_relational.dir/flatten.cc.o.d"
  "CMakeFiles/lyric_relational.dir/translator.cc.o"
  "CMakeFiles/lyric_relational.dir/translator.cc.o.d"
  "liblyric_relational.a"
  "liblyric_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
