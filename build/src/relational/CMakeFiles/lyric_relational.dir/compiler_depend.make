# Empty compiler generated dependencies file for lyric_relational.
# This may be replaced when dependencies are built.
