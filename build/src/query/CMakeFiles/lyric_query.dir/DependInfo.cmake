
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/analyzer.cc" "src/query/CMakeFiles/lyric_query.dir/analyzer.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/analyzer.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/lyric_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/ast.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/lyric_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/formula_builder.cc" "src/query/CMakeFiles/lyric_query.dir/formula_builder.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/formula_builder.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/lyric_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/lyric_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/parser.cc.o.d"
  "/root/repo/src/query/path_walker.cc" "src/query/CMakeFiles/lyric_query.dir/path_walker.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/path_walker.cc.o.d"
  "/root/repo/src/query/result_set.cc" "src/query/CMakeFiles/lyric_query.dir/result_set.cc.o" "gcc" "src/query/CMakeFiles/lyric_query.dir/result_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/object/CMakeFiles/lyric_object.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/lyric_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/arith/CMakeFiles/lyric_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lyric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
