file(REMOVE_RECURSE
  "CMakeFiles/lyric_query.dir/analyzer.cc.o"
  "CMakeFiles/lyric_query.dir/analyzer.cc.o.d"
  "CMakeFiles/lyric_query.dir/ast.cc.o"
  "CMakeFiles/lyric_query.dir/ast.cc.o.d"
  "CMakeFiles/lyric_query.dir/evaluator.cc.o"
  "CMakeFiles/lyric_query.dir/evaluator.cc.o.d"
  "CMakeFiles/lyric_query.dir/formula_builder.cc.o"
  "CMakeFiles/lyric_query.dir/formula_builder.cc.o.d"
  "CMakeFiles/lyric_query.dir/lexer.cc.o"
  "CMakeFiles/lyric_query.dir/lexer.cc.o.d"
  "CMakeFiles/lyric_query.dir/parser.cc.o"
  "CMakeFiles/lyric_query.dir/parser.cc.o.d"
  "CMakeFiles/lyric_query.dir/path_walker.cc.o"
  "CMakeFiles/lyric_query.dir/path_walker.cc.o.d"
  "CMakeFiles/lyric_query.dir/result_set.cc.o"
  "CMakeFiles/lyric_query.dir/result_set.cc.o.d"
  "liblyric_query.a"
  "liblyric_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
