file(REMOVE_RECURSE
  "liblyric_query.a"
)
