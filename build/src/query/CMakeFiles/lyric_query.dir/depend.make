# Empty dependencies file for lyric_query.
# This may be replaced when dependencies are built.
