file(REMOVE_RECURSE
  "liblyric_constraint.a"
)
