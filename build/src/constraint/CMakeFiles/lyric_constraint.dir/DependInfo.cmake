
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/canonical.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/canonical.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/canonical.cc.o.d"
  "/root/repo/src/constraint/conjunction.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/conjunction.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/conjunction.cc.o.d"
  "/root/repo/src/constraint/cst_object.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/cst_object.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/cst_object.cc.o.d"
  "/root/repo/src/constraint/dnf.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/dnf.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/dnf.cc.o.d"
  "/root/repo/src/constraint/entailment.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/entailment.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/entailment.cc.o.d"
  "/root/repo/src/constraint/existential.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/existential.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/existential.cc.o.d"
  "/root/repo/src/constraint/family.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/family.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/family.cc.o.d"
  "/root/repo/src/constraint/fourier_motzkin.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/fourier_motzkin.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/fourier_motzkin.cc.o.d"
  "/root/repo/src/constraint/linear_constraint.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/linear_constraint.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/linear_constraint.cc.o.d"
  "/root/repo/src/constraint/linear_expr.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/linear_expr.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/linear_expr.cc.o.d"
  "/root/repo/src/constraint/simplex.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/simplex.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/simplex.cc.o.d"
  "/root/repo/src/constraint/variable.cc" "src/constraint/CMakeFiles/lyric_constraint.dir/variable.cc.o" "gcc" "src/constraint/CMakeFiles/lyric_constraint.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arith/CMakeFiles/lyric_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lyric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
