file(REMOVE_RECURSE
  "CMakeFiles/lyric_constraint.dir/canonical.cc.o"
  "CMakeFiles/lyric_constraint.dir/canonical.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/conjunction.cc.o"
  "CMakeFiles/lyric_constraint.dir/conjunction.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/cst_object.cc.o"
  "CMakeFiles/lyric_constraint.dir/cst_object.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/dnf.cc.o"
  "CMakeFiles/lyric_constraint.dir/dnf.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/entailment.cc.o"
  "CMakeFiles/lyric_constraint.dir/entailment.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/existential.cc.o"
  "CMakeFiles/lyric_constraint.dir/existential.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/family.cc.o"
  "CMakeFiles/lyric_constraint.dir/family.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/fourier_motzkin.cc.o"
  "CMakeFiles/lyric_constraint.dir/fourier_motzkin.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/linear_constraint.cc.o"
  "CMakeFiles/lyric_constraint.dir/linear_constraint.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/linear_expr.cc.o"
  "CMakeFiles/lyric_constraint.dir/linear_expr.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/simplex.cc.o"
  "CMakeFiles/lyric_constraint.dir/simplex.cc.o.d"
  "CMakeFiles/lyric_constraint.dir/variable.cc.o"
  "CMakeFiles/lyric_constraint.dir/variable.cc.o.d"
  "liblyric_constraint.a"
  "liblyric_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
