src/constraint/CMakeFiles/lyric_constraint.dir/family.cc.o: \
 /root/repo/src/constraint/family.cc /usr/include/stdc-predef.h \
 /root/repo/src/constraint/family.h
