# Empty dependencies file for lyric_constraint.
# This may be replaced when dependencies are built.
