file(REMOVE_RECURSE
  "CMakeFiles/lyric_office.dir/office_db.cc.o"
  "CMakeFiles/lyric_office.dir/office_db.cc.o.d"
  "liblyric_office.a"
  "liblyric_office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
