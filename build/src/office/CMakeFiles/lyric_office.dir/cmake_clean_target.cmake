file(REMOVE_RECURSE
  "liblyric_office.a"
)
