# Empty compiler generated dependencies file for lyric_office.
# This may be replaced when dependencies are built.
