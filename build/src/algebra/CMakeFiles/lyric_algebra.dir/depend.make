# Empty dependencies file for lyric_algebra.
# This may be replaced when dependencies are built.
