file(REMOVE_RECURSE
  "liblyric_algebra.a"
)
