file(REMOVE_RECURSE
  "CMakeFiles/lyric_algebra.dir/combinators.cc.o"
  "CMakeFiles/lyric_algebra.dir/combinators.cc.o.d"
  "CMakeFiles/lyric_algebra.dir/value.cc.o"
  "CMakeFiles/lyric_algebra.dir/value.cc.o.d"
  "liblyric_algebra.a"
  "liblyric_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
