# Empty compiler generated dependencies file for lyric_arith.
# This may be replaced when dependencies are built.
