file(REMOVE_RECURSE
  "CMakeFiles/lyric_arith.dir/bigint.cc.o"
  "CMakeFiles/lyric_arith.dir/bigint.cc.o.d"
  "CMakeFiles/lyric_arith.dir/rational.cc.o"
  "CMakeFiles/lyric_arith.dir/rational.cc.o.d"
  "liblyric_arith.a"
  "liblyric_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
