
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/bigint.cc" "src/arith/CMakeFiles/lyric_arith.dir/bigint.cc.o" "gcc" "src/arith/CMakeFiles/lyric_arith.dir/bigint.cc.o.d"
  "/root/repo/src/arith/rational.cc" "src/arith/CMakeFiles/lyric_arith.dir/rational.cc.o" "gcc" "src/arith/CMakeFiles/lyric_arith.dir/rational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lyric_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
