file(REMOVE_RECURSE
  "liblyric_arith.a"
)
