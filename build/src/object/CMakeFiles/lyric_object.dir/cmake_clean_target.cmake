file(REMOVE_RECURSE
  "liblyric_object.a"
)
