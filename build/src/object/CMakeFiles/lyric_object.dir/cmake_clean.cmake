file(REMOVE_RECURSE
  "CMakeFiles/lyric_object.dir/database.cc.o"
  "CMakeFiles/lyric_object.dir/database.cc.o.d"
  "CMakeFiles/lyric_object.dir/method.cc.o"
  "CMakeFiles/lyric_object.dir/method.cc.o.d"
  "CMakeFiles/lyric_object.dir/oid.cc.o"
  "CMakeFiles/lyric_object.dir/oid.cc.o.d"
  "CMakeFiles/lyric_object.dir/schema.cc.o"
  "CMakeFiles/lyric_object.dir/schema.cc.o.d"
  "liblyric_object.a"
  "liblyric_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
