# Empty dependencies file for lyric_object.
# This may be replaced when dependencies are built.
