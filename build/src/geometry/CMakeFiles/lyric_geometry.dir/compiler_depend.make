# Empty compiler generated dependencies file for lyric_geometry.
# This may be replaced when dependencies are built.
