file(REMOVE_RECURSE
  "CMakeFiles/lyric_geometry.dir/polytope2.cc.o"
  "CMakeFiles/lyric_geometry.dir/polytope2.cc.o.d"
  "liblyric_geometry.a"
  "liblyric_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
