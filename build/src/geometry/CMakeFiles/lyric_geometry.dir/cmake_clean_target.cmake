file(REMOVE_RECURSE
  "liblyric_geometry.a"
)
