file(REMOVE_RECURSE
  "liblyric_storage.a"
)
