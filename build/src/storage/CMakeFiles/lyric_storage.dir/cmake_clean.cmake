file(REMOVE_RECURSE
  "CMakeFiles/lyric_storage.dir/serializer.cc.o"
  "CMakeFiles/lyric_storage.dir/serializer.cc.o.d"
  "liblyric_storage.a"
  "liblyric_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
