# Empty dependencies file for lyric_storage.
# This may be replaced when dependencies are built.
