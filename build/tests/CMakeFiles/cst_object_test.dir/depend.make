# Empty dependencies file for cst_object_test.
# This may be replaced when dependencies are built.
