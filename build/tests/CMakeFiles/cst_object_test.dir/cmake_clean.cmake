file(REMOVE_RECURSE
  "CMakeFiles/cst_object_test.dir/cst_object_test.cc.o"
  "CMakeFiles/cst_object_test.dir/cst_object_test.cc.o.d"
  "cst_object_test"
  "cst_object_test.pdb"
  "cst_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cst_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
