file(REMOVE_RECURSE
  "CMakeFiles/cst_property_test.dir/cst_property_test.cc.o"
  "CMakeFiles/cst_property_test.dir/cst_property_test.cc.o.d"
  "cst_property_test"
  "cst_property_test.pdb"
  "cst_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cst_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
