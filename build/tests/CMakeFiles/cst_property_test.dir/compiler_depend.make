# Empty compiler generated dependencies file for cst_property_test.
# This may be replaced when dependencies are built.
