# Empty dependencies file for oid_test.
# This may be replaced when dependencies are built.
