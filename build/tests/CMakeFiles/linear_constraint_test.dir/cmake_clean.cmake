file(REMOVE_RECURSE
  "CMakeFiles/linear_constraint_test.dir/linear_constraint_test.cc.o"
  "CMakeFiles/linear_constraint_test.dir/linear_constraint_test.cc.o.d"
  "linear_constraint_test"
  "linear_constraint_test.pdb"
  "linear_constraint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
