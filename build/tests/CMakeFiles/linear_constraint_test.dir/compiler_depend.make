# Empty compiler generated dependencies file for linear_constraint_test.
# This may be replaced when dependencies are built.
