file(REMOVE_RECURSE
  "CMakeFiles/dnf_property_test.dir/dnf_property_test.cc.o"
  "CMakeFiles/dnf_property_test.dir/dnf_property_test.cc.o.d"
  "dnf_property_test"
  "dnf_property_test.pdb"
  "dnf_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnf_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
