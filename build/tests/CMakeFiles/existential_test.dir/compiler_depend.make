# Empty compiler generated dependencies file for existential_test.
# This may be replaced when dependencies are built.
