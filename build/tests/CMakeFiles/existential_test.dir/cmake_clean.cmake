file(REMOVE_RECURSE
  "CMakeFiles/existential_test.dir/existential_test.cc.o"
  "CMakeFiles/existential_test.dir/existential_test.cc.o.d"
  "existential_test"
  "existential_test.pdb"
  "existential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/existential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
