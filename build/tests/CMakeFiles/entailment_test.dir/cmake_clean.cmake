file(REMOVE_RECURSE
  "CMakeFiles/entailment_test.dir/entailment_test.cc.o"
  "CMakeFiles/entailment_test.dir/entailment_test.cc.o.d"
  "entailment_test"
  "entailment_test.pdb"
  "entailment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entailment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
