file(REMOVE_RECURSE
  "CMakeFiles/formula_builder_test.dir/formula_builder_test.cc.o"
  "CMakeFiles/formula_builder_test.dir/formula_builder_test.cc.o.d"
  "formula_builder_test"
  "formula_builder_test.pdb"
  "formula_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
