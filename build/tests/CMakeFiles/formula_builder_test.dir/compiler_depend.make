# Empty compiler generated dependencies file for formula_builder_test.
# This may be replaced when dependencies are built.
