file(REMOVE_RECURSE
  "CMakeFiles/cabinet_queries_test.dir/cabinet_queries_test.cc.o"
  "CMakeFiles/cabinet_queries_test.dir/cabinet_queries_test.cc.o.d"
  "cabinet_queries_test"
  "cabinet_queries_test.pdb"
  "cabinet_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cabinet_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
