# Empty compiler generated dependencies file for cabinet_queries_test.
# This may be replaced when dependencies are built.
