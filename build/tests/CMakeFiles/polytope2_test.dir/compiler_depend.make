# Empty compiler generated dependencies file for polytope2_test.
# This may be replaced when dependencies are built.
