file(REMOVE_RECURSE
  "CMakeFiles/polytope2_test.dir/polytope2_test.cc.o"
  "CMakeFiles/polytope2_test.dir/polytope2_test.cc.o.d"
  "polytope2_test"
  "polytope2_test.pdb"
  "polytope2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polytope2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
