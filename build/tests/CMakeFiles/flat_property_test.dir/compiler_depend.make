# Empty compiler generated dependencies file for flat_property_test.
# This may be replaced when dependencies are built.
