file(REMOVE_RECURSE
  "CMakeFiles/flat_property_test.dir/flat_property_test.cc.o"
  "CMakeFiles/flat_property_test.dir/flat_property_test.cc.o.d"
  "flat_property_test"
  "flat_property_test.pdb"
  "flat_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
