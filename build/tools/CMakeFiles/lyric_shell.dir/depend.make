# Empty dependencies file for lyric_shell.
# This may be replaced when dependencies are built.
