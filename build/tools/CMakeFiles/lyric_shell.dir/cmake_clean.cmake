file(REMOVE_RECURSE
  "CMakeFiles/lyric_shell.dir/lyric_shell.cpp.o"
  "CMakeFiles/lyric_shell.dir/lyric_shell.cpp.o.d"
  "lyric_shell"
  "lyric_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lyric_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
