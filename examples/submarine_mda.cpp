// Submarine Maneuver Decision Aid (§1.2, after [BVCS93]).
//
// Maneuvers are points in a 4-dimensional space (course, speed, depth,
// time). Goals — "avoid land obstacle", "minimize speed", "maintain depth
// at 200 ft" and battle-management constraints — are CST objects over
// those dimensions. The decision aid finds maneuver regions satisfying
// interrelated and possibly contradicting goals, exactly the query shapes
// the paper sketches. The proprietary Naval Undersea Warfare Center data
// is substituted by a synthetic but structurally identical goal base
// (see DESIGN.md, substitutions).

#include <iostream>

#include "object/database.h"
#include "query/evaluator.h"

using namespace lyric;  // NOLINT - example code.

namespace {

LinearExpr V(const char* n) { return LinearExpr::Var(Variable::Intern(n)); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

std::vector<VarId> ManeuverDims() {
  return {Variable::Intern("course"), Variable::Intern("speed"),
          Variable::Intern("depth"), Variable::Intern("time")};
}

Status Setup(Database* db) {
  ClassDef goal;
  goal.name = "Goal";
  goal.attributes = {
      {"gname", false, kStringClass, {}},
      {"priority", false, kIntClass, {}},
      {"region", false, kCstClass, {"course", "speed", "depth", "time"}},
  };
  LYRIC_RETURN_NOT_OK(db->schema().AddClass(goal));

  auto add_goal = [db](const std::string& name, int64_t priority,
                       Conjunction region) -> Status {
    Oid oid = Oid::Symbol(name);
    LYRIC_RETURN_NOT_OK(db->Insert(oid, "Goal"));
    LYRIC_RETURN_NOT_OK(
        db->SetAttribute(oid, "gname", Value::Scalar(Oid::Str(name))));
    LYRIC_RETURN_NOT_OK(db->SetAttribute(oid, "priority",
                                         Value::Scalar(Oid::Int(priority))));
    LYRIC_ASSIGN_OR_RETURN(CstObject obj,
                           CstObject::FromConjunction(ManeuverDims(),
                                                      std::move(region)));
    LYRIC_RETURN_NOT_OK(db->SetCstAttribute(oid, "region", obj).status());
    return Status::OK();
  };

  // Physical envelope: course in [0, 360), speed in [0, 30] kn, depth in
  // [0, 800] ft, horizon 0..60 min.
  Conjunction envelope;
  envelope.Add(LinearConstraint::Ge(V("course"), C(0)));
  envelope.Add(LinearConstraint::Lt(V("course"), C(360)));
  envelope.Add(LinearConstraint::Ge(V("speed"), C(0)));
  envelope.Add(LinearConstraint::Le(V("speed"), C(30)));
  envelope.Add(LinearConstraint::Ge(V("depth"), C(0)));
  envelope.Add(LinearConstraint::Le(V("depth"), C(800)));
  envelope.Add(LinearConstraint::Ge(V("time"), C(0)));
  envelope.Add(LinearConstraint::Le(V("time"), C(60)));
  LYRIC_RETURN_NOT_OK(add_goal("physical_envelope", 0, envelope));

  // Avoid a shoal ahead: for the first 20 minutes, keep depth below the
  // rising sea floor on courses 80..140.
  Conjunction shoal;
  shoal.Add(LinearConstraint::Ge(V("course"), C(80)));
  shoal.Add(LinearConstraint::Le(V("course"), C(140)));
  shoal.Add(LinearConstraint::Le(V("time"), C(20)));
  // depth <= 300 + 10 * time (the floor falls away over time).
  shoal.Add(LinearConstraint::Le(V("depth"),
                                 V("time").Scale(Rational(10)) + C(300)));
  LYRIC_RETURN_NOT_OK(add_goal("avoid_shoal", 3, shoal));

  // Maintain depth near 200 ft: 150 <= depth <= 250.
  Conjunction cruise_depth;
  cruise_depth.Add(LinearConstraint::Ge(V("depth"), C(150)));
  cruise_depth.Add(LinearConstraint::Le(V("depth"), C(250)));
  LYRIC_RETURN_NOT_OK(add_goal("maintain_depth_200", 2, cruise_depth));

  // Quiet running: speed + depth/100 <= 18 (faster is louder; deeper
  // hides more).
  Conjunction quiet;
  quiet.Add(LinearConstraint::Le(
      V("speed") + V("depth").Scale(Rational(1, 100)), C(18)));
  LYRIC_RETURN_NOT_OK(add_goal("quiet_running", 2, quiet));

  // Battle management: reach the rendezvous bearing by minute 45 —
  // course in [100, 120] once time >= 45 is modelled as a region over the
  // late window.
  Conjunction rendezvous;
  rendezvous.Add(LinearConstraint::Ge(V("time"), C(45)));
  rendezvous.Add(LinearConstraint::Ge(V("course"), C(100)));
  rendezvous.Add(LinearConstraint::Le(V("course"), C(120)));
  rendezvous.Add(LinearConstraint::Ge(V("speed"), C(12)));
  LYRIC_RETURN_NOT_OK(add_goal("rendezvous_window", 1, rendezvous));

  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (auto st = Setup(&db); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  Evaluator ev(&db);
  std::cout << "Maneuver Decision Aid: " << db.Extent("Goal").size()
            << " goals over (course, speed, depth, time).\n\n";

  // Which goals are individually achievable inside the envelope?
  auto feas = ev.Execute(
      "SELECT G.gname FROM Goal G, Goal ENV "
      "WHERE ENV.gname = 'physical_envelope' and ENV.region[E] and "
      "G.region[R] and "
      "SAT(R(course, speed, depth, time) and E(course, speed, depth, time))");
  std::cout << "Goals achievable inside the envelope:\n"
            << feas.value().ToString() << "\n\n";

  // The joint high-priority maneuver region (priority >= 2 goals),
  // projected onto (speed, depth) for the helmsman's display.
  auto region = ev.Execute(
      "SELECT ((speed, depth) | E(course, speed, depth, time) and "
      "R1(course, speed, depth, time) and R2(course, speed, depth, time)) "
      "FROM Goal ENV, Goal G1, Goal G2 "
      "WHERE ENV.gname = 'physical_envelope' and ENV.region[E] and "
      "G1.gname = 'maintain_depth_200' and G1.region[R1] and "
      "G2.gname = 'quiet_running' and G2.region[R2]");
  std::cout << "Speed/depth region satisfying depth + quiet goals:\n"
            << region.value().ToString() << "\n\n";

  // Does quiet running subsume the envelope's speed limit at depth 200?
  auto check = ev.Execute(
      "SELECT G.gname FROM Goal G "
      "WHERE G.region[R] and "
      "((speed) | R(course, speed, depth, time) and depth = 200) "
      "|= ((speed) | speed <= 16)");
  std::cout << "Goals forcing speed <= 16 kn at 200 ft:\n"
            << check.value().ToString() << "\n\n";

  // The best (fastest) maneuver meeting every standing goal at minute 50.
  auto best = ev.Execute(
      "SELECT MAX(speed SUBJECT TO ((speed) | "
      "E(course, speed, depth, time) and D(course, speed, depth, time) and "
      "Q(course, speed, depth, time) and RV(course, speed, depth, time) and "
      "time = 50)), "
      "MAX_POINT(speed SUBJECT TO ((speed) | "
      "E(course, speed, depth, time) and D(course, speed, depth, time) and "
      "Q(course, speed, depth, time) and RV(course, speed, depth, time) and "
      "time = 50)) "
      "FROM Goal ENV, Goal GD, Goal GQ, Goal GR "
      "WHERE ENV.gname = 'physical_envelope' and ENV.region[E] and "
      "GD.gname = 'maintain_depth_200' and GD.region[D] and "
      "GQ.gname = 'quiet_running' and GQ.region[Q] and "
      "GR.gname = 'rendezvous_window' and GR.region[RV]");
  std::cout << "Fastest maneuver meeting all goals at t = 50:\n"
            << best.value().ToString() << "\n\n";

  // Contradiction detection: shoal avoidance vs rendezvous (disjoint time
  // windows -> jointly unsatisfiable).
  auto conflict = ev.Execute(
      "SELECT G1.gname, G2.gname FROM Goal G1, Goal G2 "
      "WHERE G1.region[R1] and G2.region[R2] and G1.priority >= G2.priority "
      "and not G1.gname = G2.gname and "
      "not SAT(R1(course, speed, depth, time) and "
      "R2(course, speed, depth, time))");
  std::cout << "Mutually contradicting goal pairs:\n"
            << conflict.value().ToString() << "\n";
  return 0;
}
