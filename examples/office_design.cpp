// Office design (§1.2): constraint-based layout in a 20 x 10 room.
//
// Reproduces the designer questions from the introduction:
//  * which placed objects overlap (wrong designs)?
//  * can an additional desk be placed so that its swept drawer area
//    touches nothing, leaving a free 4 x 4 square?
//  * what is the largest square of empty space (maximized with the exact
//    LP solver)?
//
// Works at two levels: LyriC queries for the database part, the CstObject
// and geometry APIs for the packing arithmetic.

#include <iostream>

#include "geometry/polytope2.h"
#include "office/office_db.h"
#include "query/evaluator.h"

using namespace lyric;  // NOLINT - example code.

namespace {

constexpr int64_t kRoomW = 20;
constexpr int64_t kRoomH = 10;

// The room-coordinate footprint of an Object_in_Room: extent conjoined
// with translation and location, projected onto (u, v).
Result<CstObject> Footprint(Database* db, const Oid& obj) {
  LYRIC_ASSIGN_OR_RETURN(Value loc, db->GetAttribute(obj, "location"));
  LYRIC_ASSIGN_OR_RETURN(Value cat, db->GetAttribute(obj, "catalog_object"));
  LYRIC_ASSIGN_OR_RETURN(Value ext,
                         db->GetAttribute(cat.scalar(), "extent"));
  LYRIC_ASSIGN_OR_RETURN(Value tr,
                         db->GetAttribute(cat.scalar(), "translation"));
  LYRIC_ASSIGN_OR_RETURN(CstObject location, db->GetCst(loc.scalar()));
  LYRIC_ASSIGN_OR_RETURN(CstObject extent, db->GetCst(ext.scalar()));
  LYRIC_ASSIGN_OR_RETURN(CstObject translation, db->GetCst(tr.scalar()));
  auto iv = [](const char* n) { return Variable::Intern(n); };
  // Align interfaces with the schema names.
  LYRIC_ASSIGN_OR_RETURN(extent, extent.RenameTo({iv("w"), iv("z")}));
  LYRIC_ASSIGN_OR_RETURN(
      translation, translation.RenameTo({iv("w"), iv("z"), iv("x"), iv("y"),
                                         iv("u"), iv("v")}));
  LYRIC_ASSIGN_OR_RETURN(location, location.RenameTo({iv("x"), iv("y")}));
  LYRIC_ASSIGN_OR_RETURN(CstObject all, extent.Conjoin(translation));
  LYRIC_ASSIGN_OR_RETURN(all, all.Conjoin(location));
  return all.ProjectEager({iv("u"), iv("v")});
}

}  // namespace

int main() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  if (!ids.ok()) {
    std::cerr << ids.status() << "\n";
    return 1;
  }
  // Furnish the room with a handful of deterministic desks.
  if (auto st = office::AddScaledDesks(&db, 6, 2024); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "Room " << kRoomW << " x " << kRoomH << " with "
            << db.Extent("Object_in_Room").size() << " placed objects.\n\n";

  // 1. Overlapping pairs, via the §2.2 Overlap view.
  Evaluator ev(&db);
  auto overlaps = ev.Execute(
      "CREATE VIEW Overlap AS SUBCLASS OF Object_in_Room "
      "SELECT first = O1, second = O2 "
      "FROM Object_in_Room O1, Object_in_Room O2 "
      "OID FUNCTION OF O1, O2 "
      "WHERE O1.location[L1] and O1.catalog_object.extent[E1] and "
      "O1.catalog_object.translation[D1] and "
      "O2.location[L2] and O2.catalog_object.extent[E2] and "
      "O2.catalog_object.translation[D2] and "
      "not O1.inv_number = O2.inv_number and "
      "SAT( ((u, v) | E1(w, z) and D1(w, z, x, y, u, v) and L1(x, y)) and "
      "((u, v) | E2(w2, z2) and D2(w2, z2, x2, y2, u, v) and L2(x2, y2)) )");
  if (!overlaps.ok()) {
    std::cerr << overlaps.status() << "\n";
    return 1;
  }
  std::cout << "Overlapping placements (design errors):\n"
            << overlaps->ToString() << "\n\n";

  // 2. Where can one more desk (footprint 8 x 4 around its center) go so
  // it clears every existing object? Build the feasible-center region by
  // conjoining the complements of the inflated obstacles.
  VarId cx = Variable::Intern("cx");
  VarId cy = Variable::Intern("cy");
  // Centers must keep the desk inside the walls.
  Conjunction walls;
  walls.Add(LinearConstraint::Ge(LinearExpr::Var(cx),
                                 LinearExpr::Constant(Rational(4))));
  walls.Add(LinearConstraint::Le(LinearExpr::Var(cx),
                                 LinearExpr::Constant(Rational(kRoomW - 4))));
  walls.Add(LinearConstraint::Ge(LinearExpr::Var(cy),
                                 LinearExpr::Constant(Rational(2))));
  walls.Add(LinearConstraint::Le(LinearExpr::Var(cy),
                                 LinearExpr::Constant(Rational(kRoomH - 2))));
  CstObject feasible = CstObject::FromDnf({cx, cy}, Dnf(walls)).value();
  for (const Oid& obj : db.Extent("Object_in_Room")) {
    auto fp = Footprint(&db, obj);
    if (!fp.ok()) continue;
    // Inflate the footprint by the new desk's half sizes (Minkowski sum of
    // boxes): centers closer than (4, 2) to the footprint collide. The
    // footprints here are boxes, so inflating the (u, v) bounds suffices.
    auto mxu = fp->Maximize(LinearExpr::Var(Variable::Intern("u"))).value();
    auto mnu = fp->Minimize(LinearExpr::Var(Variable::Intern("u"))).value();
    auto mxv = fp->Maximize(LinearExpr::Var(Variable::Intern("v"))).value();
    auto mnv = fp->Minimize(LinearExpr::Var(Variable::Intern("v"))).value();
    Conjunction blocked;
    blocked.Add(LinearConstraint::Ge(
        LinearExpr::Var(cx), LinearExpr::Constant(mnu.value - Rational(4))));
    blocked.Add(LinearConstraint::Le(
        LinearExpr::Var(cx), LinearExpr::Constant(mxu.value + Rational(4))));
    blocked.Add(LinearConstraint::Ge(
        LinearExpr::Var(cy), LinearExpr::Constant(mnv.value - Rational(2))));
    blocked.Add(LinearConstraint::Le(
        LinearExpr::Var(cy), LinearExpr::Constant(mxv.value + Rational(2))));
    CstObject obstacle = CstObject::FromConjunction({cx, cy}, blocked).value();
    CstObject avoid = obstacle.Negate().value();
    feasible = feasible.Conjoin(avoid).value();
  }
  feasible = feasible.Canonicalize(CanonicalLevel::kCheap).value();
  bool any = feasible.Satisfiable().value();
  std::cout << "Can another 8 x 4 desk be placed? "
            << (any ? "yes" : "no") << "\n";
  if (any) {
    auto pt = feasible.Body().FindPoint().value();
    std::cout << "  e.g. center at (" << pt->at(cx) << ", " << pt->at(cy)
              << ")\n";
  }
  std::cout << "\n";

  // 3. The largest empty square: maximize s such that some axis-aligned
  // square [a, a+s] x [b, b+s] avoids every footprint. Solved by scanning
  // the disjuncts of the free-space region with the LP solver.
  VarId a = Variable::Intern("a");
  VarId b = Variable::Intern("b");
  VarId s = Variable::Intern("s");
  Conjunction inside;
  inside.Add(LinearConstraint::Ge(LinearExpr::Var(s),
                                  LinearExpr::Constant(Rational(0))));
  inside.Add(LinearConstraint::Ge(LinearExpr::Var(a),
                                  LinearExpr::Constant(Rational(0))));
  inside.Add(LinearConstraint::Ge(LinearExpr::Var(b),
                                  LinearExpr::Constant(Rational(0))));
  inside.Add(LinearConstraint::Le(LinearExpr::Var(a) + LinearExpr::Var(s),
                                  LinearExpr::Constant(Rational(kRoomW))));
  inside.Add(LinearConstraint::Le(LinearExpr::Var(b) + LinearExpr::Var(s),
                                  LinearExpr::Constant(Rational(kRoomH))));
  CstObject square = CstObject::FromDnf({a, b, s}, Dnf(inside)).value();
  for (const Oid& obj : db.Extent("Object_in_Room")) {
    auto fp = Footprint(&db, obj);
    if (!fp.ok()) continue;
    auto mxu = fp->Maximize(LinearExpr::Var(Variable::Intern("u"))).value();
    auto mnu = fp->Minimize(LinearExpr::Var(Variable::Intern("u"))).value();
    auto mxv = fp->Maximize(LinearExpr::Var(Variable::Intern("v"))).value();
    auto mnv = fp->Minimize(LinearExpr::Var(Variable::Intern("v"))).value();
    // The square avoids the box iff it lies fully on one side of it.
    Dnf avoid;
    Conjunction left;
    left.Add(LinearConstraint::Le(LinearExpr::Var(a) + LinearExpr::Var(s),
                                  LinearExpr::Constant(mnu.value)));
    avoid.AddDisjunct(left);
    Conjunction right;
    right.Add(LinearConstraint::Ge(LinearExpr::Var(a),
                                   LinearExpr::Constant(mxu.value)));
    avoid.AddDisjunct(right);
    Conjunction below;
    below.Add(LinearConstraint::Le(LinearExpr::Var(b) + LinearExpr::Var(s),
                                   LinearExpr::Constant(mnv.value)));
    avoid.AddDisjunct(below);
    Conjunction above;
    above.Add(LinearConstraint::Ge(LinearExpr::Var(b),
                                   LinearExpr::Constant(mxv.value)));
    avoid.AddDisjunct(above);
    CstObject avoid_obj = CstObject::FromDnf({a, b, s}, avoid).value();
    square = square.Conjoin(avoid_obj).value();
  }
  square = square.Canonicalize(CanonicalLevel::kCheap).value();
  auto best = square.Maximize(LinearExpr::Var(s)).value();
  if (best.status == LpStatus::kOptimal) {
    std::cout << "Largest empty square: side " << best.value
              << " at corner (" << best.point[a] << ", " << best.point[b]
              << ")\n\n";
  }

  // 4. A 1-D cut of every object at height v = 3 (the §1.2 projection
  // query), via LyriC.
  auto cut = ev.Execute(
      "SELECT O.inv_number, ((u) | E and D and L and v = 3) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]");
  if (cut.ok()) {
    std::cout << "Cut at height v = 3:\n" << cut->ToString() << "\n";
  }
  return 0;
}
