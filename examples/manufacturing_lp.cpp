// Manufacturing and warehouse support (§1.2): linear programming
// generalized to a database of constraints.
//
// A chemical factory makes two products from three raw materials through
// alternative manufacturing processes, each described by linear
// constraints relating consumed materials (m1, m2, m3) to produced
// quantities (p1, p2). The classical LP "system of constraints" becomes a
// stored constraint per process; the objective function becomes a query.
// Answers reproduce the paper's question list: the connection among
// required raw materials for an order, purchase planning, producible
// ranges from stock, fill-from-inventory checks, and best-process
// selection.

#include <iostream>

#include "object/database.h"
#include "query/evaluator.h"

using namespace lyric;  // NOLINT - example code.

namespace {

LinearExpr V(const char* n) { return LinearExpr::Var(Variable::Intern(n)); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

std::vector<VarId> ProcessDims() {
  return {Variable::Intern("m1"), Variable::Intern("m2"),
          Variable::Intern("m3"), Variable::Intern("p1"),
          Variable::Intern("p2")};
}

Status Setup(Database* db) {
  ClassDef process;
  process.name = "Process";
  process.attributes = {
      {"pname", false, kStringClass, {}},
      {"setup_cost", false, kIntClass, {}},
      {"io", false, kCstClass, {"m1", "m2", "m3", "p1", "p2"}},
  };
  LYRIC_RETURN_NOT_OK(db->schema().AddClass(process));

  ClassDef order;
  order.name = "Order";
  order.attributes = {
      {"customer", false, kStringClass, {}},
      {"demand", false, kCstClass, {"p1", "p2"}},
  };
  LYRIC_RETURN_NOT_OK(db->schema().AddClass(order));

  ClassDef stock;
  stock.name = "Inventory";
  stock.attributes = {
      {"on_hand", false, kCstClass, {"m1", "m2", "m3"}},
  };
  LYRIC_RETURN_NOT_OK(db->schema().AddClass(stock));

  auto add_process = [db](const std::string& name, int64_t cost,
                          Conjunction io) -> Status {
    Oid oid = Oid::Symbol(name);
    LYRIC_RETURN_NOT_OK(db->Insert(oid, "Process"));
    LYRIC_RETURN_NOT_OK(
        db->SetAttribute(oid, "pname", Value::Scalar(Oid::Str(name))));
    LYRIC_RETURN_NOT_OK(
        db->SetAttribute(oid, "setup_cost", Value::Scalar(Oid::Int(cost))));
    LYRIC_ASSIGN_OR_RETURN(
        CstObject obj, CstObject::FromConjunction(ProcessDims(), io));
    LYRIC_RETURN_NOT_OK(db->SetCstAttribute(oid, "io", obj).status());
    return Status::OK();
  };

  // Non-negativity shared by both processes.
  auto base = [] {
    Conjunction c;
    for (const char* v : {"m1", "m2", "m3", "p1", "p2"}) {
      c.Add(LinearConstraint::Ge(V(v), C(0)));
    }
    return c;
  };

  // Classic process: p1 needs 2 m1 + 1 m2; p2 needs 1 m1 + 3 m3; reactor
  // capacity bounds total throughput.
  Conjunction classic = base();
  classic.Add(LinearConstraint::Ge(
      V("m1"), V("p1").Scale(Rational(2)) + V("p2")));
  classic.Add(LinearConstraint::Ge(V("m2"), V("p1")));
  classic.Add(LinearConstraint::Ge(V("m3"), V("p2").Scale(Rational(3))));
  classic.Add(LinearConstraint::Le(V("p1") + V("p2"), C(60)));
  LYRIC_RETURN_NOT_OK(add_process("classic_reactor", 100, classic));

  // Catalytic process: cheaper in m1, pays in m2, higher throughput.
  Conjunction catalytic = base();
  catalytic.Add(LinearConstraint::Ge(
      V("m1"), V("p1") + V("p2").Scale(Rational(1, 2))));
  catalytic.Add(LinearConstraint::Ge(
      V("m2"), V("p1").Scale(Rational(2)) + V("p2")));
  catalytic.Add(LinearConstraint::Ge(V("m3"), V("p2").Scale(Rational(2))));
  catalytic.Add(LinearConstraint::Le(V("p1") + V("p2"), C(80)));
  LYRIC_RETURN_NOT_OK(add_process("catalytic_reactor", 250, catalytic));

  // Orders.
  auto add_order = [db](const std::string& name, int64_t q1,
                        int64_t q2) -> Status {
    Oid oid = Oid::Symbol(name);
    LYRIC_RETURN_NOT_OK(db->Insert(oid, "Order"));
    LYRIC_RETURN_NOT_OK(
        db->SetAttribute(oid, "customer", Value::Scalar(Oid::Str(name))));
    Conjunction demand;
    demand.Add(LinearConstraint::Ge(V("p1"), C(q1)));
    demand.Add(LinearConstraint::Ge(V("p2"), C(q2)));
    LYRIC_ASSIGN_OR_RETURN(
        CstObject obj,
        CstObject::FromConjunction(
            {Variable::Intern("p1"), Variable::Intern("p2")}, demand));
    LYRIC_RETURN_NOT_OK(db->SetCstAttribute(oid, "demand", obj).status());
    return Status::OK();
  };
  LYRIC_RETURN_NOT_OK(add_order("acme", 20, 10));
  LYRIC_RETURN_NOT_OK(add_order("globex", 5, 30));

  // Inventory on hand.
  Oid inv = Oid::Symbol("warehouse");
  LYRIC_RETURN_NOT_OK(db->Insert(inv, "Inventory"));
  Conjunction on_hand;
  on_hand.Add(LinearConstraint::Ge(V("m1"), C(0)));
  on_hand.Add(LinearConstraint::Le(V("m1"), C(70)));
  on_hand.Add(LinearConstraint::Ge(V("m2"), C(0)));
  on_hand.Add(LinearConstraint::Le(V("m2"), C(40)));
  on_hand.Add(LinearConstraint::Ge(V("m3"), C(0)));
  on_hand.Add(LinearConstraint::Le(V("m3"), C(90)));
  LYRIC_ASSIGN_OR_RETURN(
      CstObject obj,
      CstObject::FromConjunction({Variable::Intern("m1"),
                                  Variable::Intern("m2"),
                                  Variable::Intern("m3")},
                                 on_hand));
  LYRIC_RETURN_NOT_OK(db->SetCstAttribute(inv, "on_hand", obj).status());
  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (auto st = Setup(&db); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  Evaluator ev(&db);

  // 1. "For each order of a product, what is the connection (described by
  // constraints) among the required raw materials?"
  auto connection = ev.Execute(
      "SELECT O.customer, P.pname, "
      "((m1, m2, m3) | IO(m1, m2, m3, p1, p2) and DEM(p1, p2)) "
      "FROM Order O, Process P WHERE O.demand[DEM] and P.io[IO]");
  std::cout << "Raw-material connection per order and process:\n"
            << connection.value().ToString() << "\n\n";

  // 2. "How much of each raw material should be purchased in order to
  // satisfy all current orders?" (joint demand, classic reactor)
  auto purchase = ev.Execute(
      "SELECT MIN(m1 SUBJECT TO ((m1) | IO(m1, m2, m3, p1, p2) and "
      "D1(p1, p2) and D2(p1, p2))), "
      "MIN(m2 SUBJECT TO ((m2) | IO(m1, m2, m3, p1, p2) and "
      "D1(p1, p2) and D2(p1, p2))), "
      "MIN(m3 SUBJECT TO ((m3) | IO(m1, m2, m3, p1, p2) and "
      "D1(p1, p2) and D2(p1, p2))) "
      "FROM Process P, Order O1, Order O2 "
      "WHERE P.pname = 'classic_reactor' and P.io[IO] and "
      "O1.customer = 'acme' and O1.demand[D1] and "
      "O2.customer = 'globex' and O2.demand[D2]");
  std::cout << "Minimum purchases (m1, m2, m3) to fill all orders "
               "(classic reactor):\n"
            << purchase.value().ToString() << "\n\n";

  // 3. "What are the ranges of and the connection among the quantities of
  // all products that can be produced using the raw materials currently
  // in stock?"
  auto ranges = ev.Execute(
      "SELECT P.pname, ((p1, p2) | IO(m1, m2, m3, p1, p2) and "
      "STOCK(m1, m2, m3)) "
      "FROM Process P, Inventory I WHERE P.io[IO] and I.on_hand[STOCK]");
  std::cout << "Producible (p1, p2) regions from stock:\n"
            << ranges.value().ToString() << "\n\n";

  // 4. "Can an order be filled only by using raw materials in inventory?"
  auto fillable = ev.Execute(
      "SELECT O.customer, P.pname FROM Order O, Process P, Inventory I "
      "WHERE O.demand[DEM] and P.io[IO] and I.on_hand[STOCK] and "
      "SAT(IO(m1, m2, m3, p1, p2) and DEM(p1, p2) and STOCK(m1, m2, m3))");
  std::cout << "Orders fillable from inventory (per process):\n"
            << fillable.value().ToString() << "\n\n";

  // 5. "What is the best manufacturing process for a given set of
  // orders?" — maximize profit 7*p1 + 5*p2 - materials cost over stock.
  auto best = ev.Execute(
      "SELECT P.pname, MAX(7 * p1 + 5 * p2 - m1 - m2 - m3 SUBJECT TO "
      "((p1, p2) | IO(m1, m2, m3, p1, p2) and STOCK(m1, m2, m3))) "
      "FROM Process P, Inventory I WHERE P.io[IO] and I.on_hand[STOCK]");
  std::cout << "Profit potential per process (7 p1 + 5 p2 - materials):\n"
            << best.value().ToString() << "\n\n";

  // 6. "Is it possible to improve the profit by 5% by buying some amount
  // of a single raw material and then using a better manufacturing
  // process?" — compare each process's optimum with m2 relaxed by 20.
  auto improved = ev.Execute(
      "SELECT P.pname, MAX(7 * p1 + 5 * p2 - m1 - m2 - m3 SUBJECT TO "
      "((p1, p2) | IO(m1, m2, m3, p1, p2) and STOCK(m1, m2stock, m3) and "
      "0 <= m2 and m2 <= 60)) "
      "FROM Process P, Inventory I WHERE P.io[IO] and I.on_hand[STOCK]");
  if (improved.ok()) {
    std::cout << "Profit with 20 extra units of m2 purchasable:\n"
              << improved->ToString() << "\n";
  } else {
    std::cout << "(variant query unsupported: " << improved.status()
              << ")\n";
  }
  return 0;
}
