// Quickstart: the paper's running example, end to end.
//
// Builds the Figure 1 schema and the Figure 2 instance, then runs the
// worked queries of §4.1 and prints their answers. Start here to see the
// whole public API surface: Database/Schema, CstObject, and Evaluator.

#include <iostream>

#include "office/office_db.h"
#include "query/evaluator.h"

using namespace lyric;  // NOLINT - example code.

namespace {

void Run(Evaluator* ev, const std::string& title, const std::string& query) {
  std::cout << "-- " << title << "\n" << query << "\n";
  auto r = ev->Execute(query);
  if (!r.ok()) {
    std::cout << "error: " << r.status() << "\n\n";
    return;
  }
  std::cout << r->ToString() << "\n\n";
}

}  // namespace

int main() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  if (!ids.ok()) {
    std::cerr << "failed to build database: " << ids.status() << "\n";
    return 1;
  }
  std::cout << "Loaded the Figure 2 office database: "
            << db.ObjectCount() << " objects, " << db.CstCount()
            << " constraint objects interned.\n\n";

  Evaluator ev(&db);

  Run(&ev, "4.1 Q1: drawer extents as logical oids",
      "SELECT Y FROM Desk X WHERE X.drawer.extent[Y]");

  Run(&ev, "4.1 Q2: catalog extents in room coordinates, center at (6,4)",
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]");

  Run(&ev, "4.1 Q3: the area a drawer can sweep, in room coordinates",
      "SELECT O, ((u, v) | D(w, z, x, y, u, v) and "
      "DD(w1, z1, x1, y1, u1, v1) and w = u1 and z = v1 and "
      "DC(p, q) and DE(w1, z1) and L(x, y)) "
      "FROM Object_in_Room O, Desk DSK "
      "WHERE O.location[L] and O.catalog_object[DSK] and "
      "DSK.translation[D] and DSK.drawer_center[DC] and "
      "DSK.drawer.translation[DD] and DSK.drawer.extent[DE]");

  Run(&ev, "4.1 Q4: red desks with a centered drawer (none here: p = -2)",
      "SELECT DSK FROM Desk DSK WHERE DSK.color = 'red' and "
      "DSK.drawer_center[C] and C(p, q) |= p = 0");

  Run(&ev, "4.1 Q5: desks whose drawer never touches the 20x10 room walls",
      "SELECT DSK FROM Object_in_Room O, Desk DSK "
      "WHERE O.catalog_object[DSK] and O.location[L] and "
      "DSK.translation[D] and DSK.drawer_center[DC] and "
      "DSK.drawer.extent[DE] and DSK.drawer.translation[DD] and "
      "((u, v) | D(w, z, x, y, u, v) and DD(w1, z1, x1, y1, u1, v1) and "
      "w = u1 and z = v1 and DC(p, q) and DE(w1, z1) and L(x, y)) "
      "|= ((u, v) | 0 < u and u < 20 and 0 < v and v < 10)");

  Run(&ev, "4.2: linear programming inside SELECT",
      "SELECT DSK.name, MAX(w + z SUBJECT TO ((w, z) | E)), "
      "MAX_POINT(w + z SUBJECT TO ((w, z) | E)) "
      "FROM Desk DSK WHERE DSK.extent[E]");

  Run(&ev, "1.2: a cut of the desk at height 3, in room coordinates",
      "SELECT ((u) | E and D and L and v = 3) "
      "FROM Object_in_Room O, Office_Object CO "
      "WHERE O.catalog_object[CO] and O.location[L] and "
      "CO.extent[E] and CO.translation[D]");

  return 0;
}
