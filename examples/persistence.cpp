// Persistence: dump the office database to a text catalog, reload it,
// and show that constraint identities and query answers survive.

#include <cstdio>
#include <iostream>

#include "office/office_db.h"
#include "query/evaluator.h"
#include "storage/serializer.h"

using namespace lyric;  // NOLINT - example code.

int main() {
  Database db;
  auto ids = office::BuildOfficeDatabase(&db);
  if (!ids.ok()) {
    std::cerr << ids.status() << "\n";
    return 1;
  }
  if (auto st = office::AddScaledDesks(&db, 3, 7); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  std::string dump = Serializer::DumpDatabase(db).value();
  std::cout << "Dumped " << db.ObjectCount() << " objects / "
            << db.CstCount() << " constraints into " << dump.size()
            << " bytes. Excerpt:\n\n";
  std::cout << dump.substr(0, 600) << "...\n\n";

  const char* path = "office.lyricdb";
  if (auto st = Serializer::SaveToFile(db, path); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }

  Database loaded;
  if (auto st = Serializer::LoadFromFile(path, &loaded); !st.ok()) {
    std::cerr << st << "\n";
    return 1;
  }
  std::cout << "Reloaded " << loaded.ObjectCount() << " objects, integrity "
            << loaded.CheckIntegrity().ToString() << ".\n\n";

  Evaluator ev(&loaded);
  auto r = ev.Execute(
      "SELECT CO, ((u, v) | E and D and x = 6 and y = 4) "
      "FROM Office_Object CO WHERE CO.extent[E] and CO.translation[D]");
  if (!r.ok()) {
    std::cerr << r.status() << "\n";
    return 1;
  }
  std::cout << "The paper's Q2 on the reloaded database:\n"
            << r->ToString() << "\n";
  std::remove(path);
  return 0;
}
